#include "elasticrec/hw/network.h"

#include "elasticrec/common/error.h"

namespace erec::hw {

NetworkLink::NetworkLink(double bytes_per_sec, SimTime base_latency)
    : bytesPerSec_(bytes_per_sec), baseLatency_(base_latency)
{
    ERC_CHECK(bytes_per_sec > 0, "link bandwidth must be positive");
    ERC_CHECK(base_latency >= 0, "base latency must be non-negative");
}

NetworkLink::NetworkLink(const NodeSpec &node)
    : NetworkLink(node.netBandwidth, node.netBaseLatency)
{
}

SimTime
NetworkLink::transferTime(Bytes message_bytes) const
{
    const double ser_s =
        static_cast<double>(message_bytes) / bytesPerSec_;
    return baseLatency_ + static_cast<SimTime>(ser_s * 1e6 + 0.5);
}

} // namespace erec::hw
