/**
 * @file
 * Figure 9: QPS of the embedding gather operation as a function of the
 * number of gathers over a 20M-entry table, for embedding dimensions
 * 32 through 512.
 *
 * Paper reference: curves are flat at low gather counts and decline as
 * gathers grow; larger dimensions shift the whole curve down (more
 * bytes fetched per gather). This profile is exactly what ElasticRec's
 * one-time profiling step feeds into the QPS(x) regression.
 */

#include "bench_util.h"

#include "elasticrec/core/qps_model.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Figure 9: QPS vs number of embedding gathers",
                  "flat head, declining tail; higher dim -> lower QPS");

    const auto node = hw::cpuOnlyNode();
    hw::LatencyModel lat(node);
    const std::uint32_t cores = 1;
    const auto overhead =
        static_cast<SimTime>(node.cpu.sparseRpcOverheadUs);

    std::vector<std::uint32_t> dims = {32, 64, 128, 256, 512};
    std::vector<core::QpsModel> models;
    for (auto dim : dims) {
        models.push_back(core::QpsModel::profile(
            lat, Bytes{dim} * 4, cores, 131072, overhead));
    }

    std::vector<std::string> header = {"gathers"};
    for (auto dim : dims)
        header.push_back("dim " + std::to_string(dim));
    TablePrinter t(header);
    for (std::uint64_t g = 1; g <= 131072; g *= 4) {
        std::vector<std::string> row = {
            TablePrinter::num(static_cast<std::int64_t>(g))};
        for (const auto &m : models)
            row.push_back(TablePrinter::num(
                m.qps(static_cast<double>(g)), 1));
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::cout << "\nShape checks:\n";
    const auto &d32 = models.front();
    const auto &d512 = models.back();
    std::cout << "  dim 32: QPS(1)/QPS(100) = "
              << TablePrinter::ratio(d32.qps(1) / d32.qps(100))
              << " (flat head), QPS(1)/QPS(100k) = "
              << TablePrinter::ratio(d32.qps(1) / d32.qps(100000), 1)
              << " (declining tail)\n";
    std::cout << "  dim 512 vs dim 32 at 100k gathers: "
              << TablePrinter::ratio(d32.qps(100000) /
                                     d512.qps(100000))
              << " lower\n";
    return 0;
}
