/**
 * @file
 * Figure 20 (Section VI-E): ElasticRec versus model-wise augmented
 * with a GPU-side embedding cache capturing 90% of gathers, on the
 * CPU-GPU platform at 200 queries/sec.
 *
 * Paper reference: the cache cuts the embedding layer's latency by
 * ~47% and system memory by ~41% versus plain model-wise, but
 * ElasticRec still consumes 1.7x less memory than model-wise (cache).
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Figure 20: vs model-wise + GPU embedding cache "
                  "(CPU-GPU, 200 QPS)",
                  "cache: -47% embedding latency, -41% memory vs MW; "
                  "ER still 1.7x below MW(cache)");

    const auto node = hw::cpuGpuNode();
    const double target = 200.0;

    TablePrinter t({"model", "model-wise", "MW (cache)", "ElasticRec",
                    "MW/cache", "cache/ER"});
    for (const auto &config : model::tableIIModels()) {
        core::Planner planner = core::Planner::forPlatform(config, node);
        const auto cdf = sim::cdfFor(config);
        const auto er = planner.planElasticRec({cdf});
        const auto mw = planner.planModelWise();
        const auto cache = planner.planModelWiseGpuCache(0.9);

        const auto mw_mem = mw.memoryForTarget(target);
        const auto cache_mem = cache.memoryForTarget(target);
        const auto er_mem = er.memoryForTarget(target);
        t.addRow({config.name, units::formatBytes(mw_mem),
                  units::formatBytes(cache_mem),
                  units::formatBytes(er_mem),
                  TablePrinter::ratio(static_cast<double>(mw_mem) /
                                      cache_mem),
                  TablePrinter::ratio(static_cast<double>(cache_mem) /
                                      er_mem)});
    }
    t.print(std::cout);

    // Latency effect of the cache on the embedding stage (RM1).
    {
        core::Planner planner =
            core::Planner::forPlatform(model::rm1(), node);
        const auto mw = planner.planModelWise();
        const auto cache = planner.planModelWiseGpuCache(0.9);
        const double plain =
            units::toMillis(mw.frontendShard().stageLatencies[1]);
        const double cached =
            units::toMillis(cache.frontendShard().stageLatencies[1]);
        std::cout << "RM1 embedding-stage latency: "
                  << TablePrinter::num(plain, 1) << " ms -> "
                  << TablePrinter::num(cached, 1) << " ms ("
                  << TablePrinter::percent(1.0 - cached / plain)
                  << " reduction; paper: 47%)\n";
    }
    return 0;
}
