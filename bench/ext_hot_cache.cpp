/**
 * @file
 * Extension study (beyond the paper): ElasticRec + GPU hot-prefix
 * cache. The hottest rows of every table live in the dense shard's
 * HBM, so the bulk of gathers never pay the RPC fabric or a CPU
 * hot-shard replica fleet; only the cold tail is partitioned into CPU
 * sparse shards. Compared against plain ElasticRec and both model-wise
 * variants at the paper's CPU-GPU operating point (200 QPS).
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Extension: ElasticRec + GPU hot-prefix cache "
                  "(CPU-GPU, 200 QPS)",
                  "synthesis of Section IV elasticity and Section "
                  "VI-E's GPU cache");

    const auto node = hw::cpuGpuNode();
    const double target = 200.0;

    for (const auto &config : model::tableIIModels()) {
        core::Planner planner = core::Planner::forPlatform(config, node);
        const auto cdf = sim::cdfFor(config);

        // Hot prefix sized to a quarter of HBM across all tables.
        const Bytes row_bytes = Bytes{config.embeddingDim} * 4;
        const std::uint64_t hot_rows =
            node.gpu.hbmCapacity / 4 / row_bytes / config.numTables;

        const auto er = planner.planElasticRec({cdf});
        const auto hot = planner.planElasticRecHotCache({cdf}, hot_rows);
        const auto mw = planner.planModelWise();
        const auto mwc = planner.planModelWiseGpuCache(0.9);

        std::cout << "\n" << config.name << " (hot prefix " << hot_rows
                  << " rows/table = "
                  << TablePrinter::percent(
                         cdf->massOfTopRows(hot_rows))
                  << " of gathers in HBM):\n";
        TablePrinter t({"policy", "memory", "replicas", "nodes",
                        "vs plain ER"});
        const auto er_view = sim::evaluateStatic(er, node, target);
        for (const auto *plan : {&mw, &mwc, &er, &hot}) {
            const auto view = sim::evaluateStatic(*plan, node, target);
            t.addRow({plan->policy, units::formatBytes(view.memory),
                      TablePrinter::num(static_cast<std::int64_t>(
                          view.totalReplicas)),
                      TablePrinter::num(static_cast<std::int64_t>(
                          view.nodes)),
                      TablePrinter::ratio(
                          static_cast<double>(er_view.memory) /
                          static_cast<double>(view.memory))});
        }
        t.print(std::cout);
    }
    std::cout << "\n(values > 1.00x in the last column beat plain "
                 "ElasticRec on memory)\n";
    return 0;
}
