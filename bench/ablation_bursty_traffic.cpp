/**
 * @file
 * Ablation (beyond the paper): autoscaling under bursty random-walk
 * traffic. Figure 19's ramp is smooth; real traffic also swings
 * abruptly. The rate performs a multiplicative random walk between 15
 * and 110 QPS every 90 seconds, and both architectures must keep up
 * via the HPA. ElasticRec's seconds-scale shard cold starts absorb
 * bursts that the baseline — reloading a full model copy per new
 * replica — cannot.
 */

#include "bench_util.h"

#include "elasticrec/sim/cluster_sim.h"

using namespace erec;

int
main(int argc, char **argv)
{
    bench::quietLogs();
    bench::banner("Ablation: bursty random-walk traffic (RM1, "
                  "CPU-only, 20 min)",
                  "abrupt rate swings stress autoscaler reaction");

    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const SimTime duration = 20 * units::kMinute;
    const auto traffic = workload::TrafficPattern::randomWalk(
        40.0, 15.0, 110.0, 90 * units::kSecond, duration, 5);
    const std::string metrics_dir = bench::metricsOutDir(argc, argv);

    const auto plans = bench::makePlans(config, node);
    sim::SimOptions opt;
    opt.seed = 21;
    opt.traceSampleEvery = metrics_dir.empty() ? 0 : 100;

    TablePrinter t({"policy", "completed", "SLA violations",
                    "violation %", "p95 ms", "peak mem GiB",
                    "mean replicas"});
    for (const auto &plan : {plans.elasticRec, plans.modelWise}) {
        sim::ClusterSimulation sim(plan, node, traffic, opt);
        const auto r = sim.run(duration);
        bench::printSloVerdicts(plan.policy, sim);
        bench::exportSimMetrics(metrics_dir,
                                "bursty_" + plan.policy, sim);
        t.addRow({plan.policy,
                  TablePrinter::num(
                      static_cast<std::int64_t>(r.completed)),
                  TablePrinter::num(
                      static_cast<std::int64_t>(r.slaViolations)),
                  TablePrinter::percent(
                      static_cast<double>(r.slaViolations) /
                      std::max<std::uint64_t>(1, r.completed)),
                  TablePrinter::num(r.p95LatencyOverallMs, 1),
                  TablePrinter::num(units::toGiB(r.peakMemory), 1),
                  TablePrinter::num(r.readyReplicas.meanValue(), 1)});
    }
    t.print(std::cout);
    return 0;
}
