/**
 * @file
 * Ablation: row-wise hotness partitioning (ElasticRec) vs column-wise
 * partitioning (the model-parallel alternative discussed in Section
 * II-D). Column shards each hold a dim-slice of every row, so every
 * gather touches every shard: load is identical across shards, all
 * replicas scale together, and no shard can be scaled by utility.
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Ablation: row-wise (hotness) vs column-wise "
                  "partitioning (CPU-only, 100 QPS)",
                  "column-wise cannot exploit skew; ElasticRec's "
                  "row-wise plan can");

    const auto node = hw::cpuOnlyNode();
    const double target = 100.0;

    for (const auto &config : model::tableIIModels()) {
        core::Planner planner(config, node);
        const auto cdf = sim::cdfFor(config);
        const auto row_wise = planner.planElasticRec({cdf});

        std::cout << "\n" << config.name << ":\n";
        TablePrinter t({"plan", "shards/table", "memory", "replicas",
                        "vs row-wise"});
        const auto rw = sim::evaluateStatic(row_wise, node, target);
        t.addRow({"row-wise (ElasticRec)",
                  TablePrinter::num(static_cast<std::int64_t>(
                      row_wise.tableShards(0).size())),
                  units::formatBytes(rw.memory),
                  TablePrinter::num(static_cast<std::int64_t>(
                      rw.totalReplicas)),
                  "1.00x"});
        for (std::uint32_t columns : {2u, 4u, 8u}) {
            const auto plan = planner.planColumnWise(columns);
            const auto cw = sim::evaluateStatic(plan, node, target);
            t.addRow({"column-wise " + std::to_string(columns),
                      TablePrinter::num(
                          static_cast<std::int64_t>(columns)),
                      units::formatBytes(cw.memory),
                      TablePrinter::num(static_cast<std::int64_t>(
                          cw.totalReplicas)),
                      TablePrinter::ratio(
                          static_cast<double>(cw.memory) /
                          static_cast<double>(rw.memory))});
        }
        t.print(std::cout);
    }
    std::cout << "(column-wise replicates the full row space in every "
                 "scaled shard slice, so it cannot separate hot from "
                 "cold embeddings)\n";
    return 0;
}
