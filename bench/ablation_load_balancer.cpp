/**
 * @file
 * Ablation (beyond the paper): load-balancing policy across shard
 * replicas. The paper routes with Linkerd (whose default is
 * power-of-two-choices); this sweep compares round-robin, full
 * least-loaded scanning and P2C on tail latency under the same
 * steady ElasticRec deployment.
 */

#include "bench_util.h"

#include "elasticrec/sim/cluster_sim.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Ablation: load-balancing policy (RM1 ElasticRec, "
                  "CPU-only, 90 QPS steady)",
                  "Linkerd's P2C should land near least-loaded at a "
                  "fraction of the cost");

    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto plans = bench::makePlans(config, node);

    TablePrinter t({"policy", "achieved QPS", "mean ms", "p95 ms",
                    "SLA violations"});
    for (auto policy :
         {cluster::LbPolicy::RoundRobin, cluster::LbPolicy::LeastLoaded,
          cluster::LbPolicy::PowerOfTwoChoices}) {
        sim::ExperimentOptions opt;
        opt.duration = 120 * units::kSecond;
        opt.sim.seed = 31;
        opt.sim.lbPolicy = policy;
        const auto result =
            sim::runSteadyState(plans.elasticRec, node, 90.0, opt);
        t.addRow({cluster::toString(policy),
                  TablePrinter::num(result.achievedQps, 1),
                  TablePrinter::num(result.meanLatencyMs, 1),
                  TablePrinter::num(result.p95LatencyMs, 1),
                  TablePrinter::percent(result.slaViolationFraction)});
    }
    t.print(std::cout);
    return 0;
}
