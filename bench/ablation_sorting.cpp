/**
 * @file
 * Ablation (Figure 8(a) vs 8(b)): the value of hotness-sorting the
 * embedding table before partitioning. Partitioning the unsorted table
 * mixes hot and cold rows in every shard, so replicating a "hot" shard
 * duplicates cold rows and the utility-based allocation degenerates.
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Ablation: table sorting before partitioning",
                  "sorted (Fig 8b) vs unsorted (Fig 8a) partitioning");

    const auto node = hw::cpuOnlyNode();
    const double target = 100.0;

    TablePrinter t({"model", "sorted mem", "unsorted mem",
                    "sorting gain", "sorted shards",
                    "unsorted shards"});
    for (const auto &config : model::tableIIModels()) {
        const auto cdf = sim::cdfFor(config);

        core::Planner sorted(config, node);
        core::PlannerOptions opt;
        opt.sortTables = false;
        core::Planner unsorted(config, node, opt);

        const auto plan_sorted = sorted.planElasticRec({cdf});
        const auto plan_unsorted = unsorted.planElasticRec({cdf});
        const auto mem_sorted = plan_sorted.memoryForTarget(target);
        const auto mem_unsorted =
            plan_unsorted.memoryForTarget(target);
        t.addRow({config.name, units::formatBytes(mem_sorted),
                  units::formatBytes(mem_unsorted),
                  TablePrinter::ratio(
                      static_cast<double>(mem_unsorted) / mem_sorted),
                  TablePrinter::num(static_cast<std::int64_t>(
                      plan_sorted.tableShards(0).size())),
                  TablePrinter::num(static_cast<std::int64_t>(
                      plan_unsorted.tableShards(0).size()))});
    }
    t.print(std::cout);
    std::cout << "(unsorted partitioning loses the hot/cold separation "
                 "and with it most of the memory savings)\n";
    return 0;
}
