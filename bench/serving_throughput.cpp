/**
 * @file
 * End-to-end concurrent serving throughput sweep: builds the full
 * functional stack (bucketizers, sparse shard servers, dense frontend)
 * on a runtime::Executor at each worker count, drives it closed-loop
 * through the QueryDispatcher, and reports QPS, latency quantiles (from
 * obs::QuantileSketch) and the coalesced batch-size histogram.
 *
 * Machine-readable output goes to BENCH_serving.json (override with
 * --out); the CI perf gate compares it against
 * bench/baselines/BENCH_serving.json with tools/benchdiff:
 *
 *     serving_throughput --quick --out BENCH_serving.json
 *     erec_benchdiff bench/baselines/BENCH_serving.json \
 *         BENCH_serving.json --tolerance 15%
 *
 * Flags:
 *   --quick           small query count for CI (default full run)
 *   --threads CSV     worker counts to sweep (default 1,2,4)
 *   --queries N       queries per sweep point (overrides --quick)
 *   --out PATH        JSON output path (default BENCH_serving.json)
 *   --throttle-us N   sleep N us between submissions — deliberately
 *                     depresses QPS so CI can demonstrate the
 *                     benchdiff regression gate firing
 *   --trace-sample N  causal tracing: sample every Nth query into the
 *                     flight recorder and measure its cost. Each sweep
 *                     point runs three adjacent untraced/traced window
 *                     pairs and reports the minimum pairwise
 *                     trace_overhead_pct = (qps - qps_traced) / qps;
 *                     the CI gate pins it at <= 5% for N = 100 and
 *                     allocs_per_query (measured traced) at zero
 *   --metrics-out DIR dump the obs registry per sweep point
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "elasticrec/common/alloc_tracker.h"
#include "elasticrec/common/error.h"
#include "elasticrec/common/table_printer.h"
#include "elasticrec/model/dlrm.h"
#include "elasticrec/obs/export.h"
#include "elasticrec/obs/sketch.h"
#include "elasticrec/rpc/channel.h"
#include "elasticrec/serving/stack_builder.h"
#include "elasticrec/workload/query_generator.h"

namespace erec::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct BenchOptions
{
    std::vector<std::size_t> threads = {1, 2, 4};
    std::size_t queries = 2000;
    std::string out = "BENCH_serving.json";
    std::string metricsOut;
    std::uint64_t throttleUs = 0;
    std::uint64_t traceSample = 0;
    bool quick = false;
};

/** One sweep point's measurements. */
struct SweepResult
{
    std::size_t threads = 0;
    std::size_t queries = 0;
    double qps = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double maxMs = 0.0;
    double meanBatch = 0.0;
    /** Heap allocations per query inside the AllocGate regions of the
     *  steady-state path (queue, pool dequeue, pump, gathers) — gated
     *  at exactly zero by the CI perf gate. With --trace-sample this is
     *  measured in the traced window, so span recording itself must
     *  stay allocation-free. */
    double allocsPerQuery = 0.0;
    /** Best traced-window throughput (0 when tracing is off). */
    double qpsTraced = 0.0;
    /** Throughput cost of tracing: (qps - qps_traced) / qps * 100,
     *  clamped at 0. Always emitted; 0 when tracing is off. */
    double traceOverheadPct = 0.0;
    std::vector<std::uint64_t> batchHist;
};

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            opts.quick = true;
            opts.queries = 300;
        } else if (arg == "--queries" && i + 1 < argc) {
            opts.queries =
                static_cast<std::size_t>(std::stoull(argv[++i]));
        } else if (arg == "--threads" && i + 1 < argc) {
            opts.threads.clear();
            std::string csv = argv[++i];
            std::size_t pos = 0;
            while (pos < csv.size()) {
                const std::size_t comma = csv.find(',', pos);
                const std::string tok =
                    csv.substr(pos, comma == std::string::npos
                                        ? std::string::npos
                                        : comma - pos);
                opts.threads.push_back(
                    static_cast<std::size_t>(std::stoull(tok)));
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
            ERC_CHECK(!opts.threads.empty(),
                      "--threads needs at least one worker count");
        } else if (arg == "--out" && i + 1 < argc) {
            opts.out = argv[++i];
        } else if (arg == "--throttle-us" && i + 1 < argc) {
            opts.throttleUs = std::stoull(argv[++i]);
        } else if (arg == "--trace-sample" && i + 1 < argc) {
            opts.traceSample = std::stoull(argv[++i]);
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            opts.metricsOut = argv[++i];
        } else {
            erec::fatal("unknown bench flag: " + arg);
        }
    }
    for (const std::size_t t : opts.threads)
        ERC_CHECK(t >= 1, "--threads entries must be >= 1");
    return opts;
}

/** A serving-scale (not figure-scale) model: big enough that shard
 *  gathers dominate, small enough for a CI quick run. */
model::DlrmConfig
benchConfig()
{
    auto c = model::rm1();
    c.name = "bench";
    c.rowsPerTable = 8192;
    c.numTables = 4;
    c.poolingFactor = 16;
    c.batchSize = 4;
    return c;
}

/** Run one sweep point: a stack on `t` executor workers, closed-loop
 *  submission with a bounded in-flight window. */
SweepResult
runPoint(const std::shared_ptr<const model::Dlrm> &dlrm,
         const BenchOptions &opts, std::size_t t,
         std::uint64_t sample_every)
{
    const auto &config = dlrm->config();
    auto registry = std::make_shared<obs::Registry>();
    runtime::ExecutorOptions exec_opts;
    exec_opts.workers = t;
    exec_opts.maxBatchSize = 8;
    exec_opts.maxBatchDelayUs = 200;
    auto stack = serving::buildElasticRecStack(
        dlrm,
        {serving::TablePlan{.boundaries = {config.rowsPerTable / 64,
                                           config.rowsPerTable / 8,
                                           config.rowsPerTable}}},
        {.observability = registry,
         .executor = std::make_shared<runtime::Executor>(exec_opts),
         .traceSampleEvery = sample_every});

    workload::QueryShape shape;
    shape.batchSize = config.batchSize;
    shape.numTables = config.numTables;
    shape.gathersPerItem = config.poolingFactor;
    workload::QueryGenerator gen(
        shape,
        std::make_shared<workload::LocalityDistribution>(
            config.rowsPerTable, 0.9),
        /*seed=*/42);

    // Warm-up: touch every shard path once before the timed window,
    // then zero the alloc-tracker regions so the timed window measures
    // only steady-state allocations.
    for (int i = 0; i < 16; ++i)
        stack.submit(gen.next()).get();
    resetAllocRegionStats();

    obs::QuantileSketch latency_ms(0.01);
    const std::size_t window = std::max<std::size_t>(4, 4 * t);
    std::deque<std::pair<Clock::time_point,
                         std::future<std::vector<float>>>>
        inflight;
    const auto drainOldest = [&]() {
        auto [start, fut] = std::move(inflight.front());
        inflight.pop_front();
        fut.get();
        latency_ms.insert(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      start)
                .count());
    };

    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < opts.queries; ++i) {
        if (opts.throttleUs > 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(opts.throttleUs));
        inflight.emplace_back(Clock::now(), stack.submit(gen.next()));
        if (inflight.size() >= window)
            drainOldest();
    }
    while (!inflight.empty())
        drainOldest();
    const double elapsed_s =
        std::chrono::duration<double>(Clock::now() - t0).count();

    SweepResult r;
    r.threads = t;
    r.queries = opts.queries;
    r.qps = static_cast<double>(opts.queries) / elapsed_s;
    r.p50Ms = latency_ms.quantile(0.50);
    r.p95Ms = latency_ms.quantile(0.95);
    r.maxMs = latency_ms.maxValue();
    r.meanBatch = stack.dispatcher->meanBatchSize();
    std::uint64_t region_allocs = 0;
    for (const auto &stats : allocRegionStats())
        region_allocs += stats.allocs;
    r.allocsPerQuery = static_cast<double>(region_allocs) /
                       static_cast<double>(opts.queries);
    r.batchHist = stack.dispatcher->batchSizeHistogram();

    if (!opts.metricsOut.empty()) {
        stack.publishStats();
        obs::writeMetricsFiles(opts.metricsOut,
                               "serving_t" + std::to_string(t),
                               *registry);
    }
    stack.dispatcher->drain();
    return r;
}

std::string
jsonNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

/** Deterministic-format JSON for tools/benchdiff: one sweep entry per
 *  worker count, keyed by "threads". */
void
writeJson(const std::string &path, const BenchOptions &opts,
          const std::vector<SweepResult> &sweep)
{
    std::ofstream out(path);
    ERC_CHECK(out.good(), "cannot open bench output file " << path);
    out << "{\n";
    out << "  \"bench\": \"serving_throughput\",\n";
    out << "  \"quick\": " << (opts.quick ? "true" : "false") << ",\n";
    out << "  \"throttle_us\": " << opts.throttleUs << ",\n";
    out << "  \"trace_sample\": " << opts.traceSample << ",\n";
    out << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto &r = sweep[i];
        out << "    {\"threads\": " << r.threads
            << ", \"queries\": " << r.queries
            << ", \"qps\": " << jsonNum(r.qps)
            << ", \"p50_ms\": " << jsonNum(r.p50Ms)
            << ", \"p95_ms\": " << jsonNum(r.p95Ms)
            << ", \"max_ms\": " << jsonNum(r.maxMs)
            << ", \"mean_batch\": " << jsonNum(r.meanBatch)
            << ", \"allocs_per_query\": " << jsonNum(r.allocsPerQuery)
            << ", \"qps_traced\": " << jsonNum(r.qpsTraced)
            << ", \"trace_overhead_pct\": "
            << jsonNum(r.traceOverheadPct)
            << ", \"batch_hist\": [";
        for (std::size_t k = 0; k < r.batchHist.size(); ++k)
            out << (k ? ", " : "") << r.batchHist[k];
        out << "]}" << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    const double first = sweep.front().qps;
    const double last = sweep.back().qps;
    out << "  \"scaling\": "
        << jsonNum(first > 0.0 ? last / first : 0.0) << "\n";
    out << "}\n";
    ERC_CHECK(out.good(), "failed writing bench output " << path);
}

/** What the runtime's request coalescing buys on the RPC cost model:
 *  a batch of n lookups pays the per-call gRPC overhead once. */
void
printBatchingModel()
{
    const rpc::Channel ch(hw::NetworkLink(12.5e9, 5));
    const Bytes req = 512, resp = 2048;
    TablePrinter t({"batch", "n x roundTrip (us)", "batched (us)",
                    "saving"});
    for (const std::size_t n : {1UL, 4UL, 8UL, 16UL}) {
        const auto individual =
            static_cast<double>(n) *
            static_cast<double>(ch.roundTrip(req, resp));
        const auto batched =
            static_cast<double>(ch.batchedRoundTrip(n, req, resp));
        t.addRow({TablePrinter::num(static_cast<std::int64_t>(n)),
                  TablePrinter::num(individual, 0),
                  TablePrinter::num(batched, 0),
                  TablePrinter::percent(1.0 - batched / individual)});
    }
    t.print(std::cout);
}

int
run(int argc, char **argv)
{
    quietLogs();
    const BenchOptions opts = parseArgs(argc, argv);
    banner("Concurrent serving throughput (runtime executor sweep)",
           "DESIGN.md section 8 (no paper figure; CI perf gate input)");
    std::cout << "queries/point: " << opts.queries
              << "  threads:";
    for (const std::size_t t : opts.threads)
        std::cout << " " << t;
    if (opts.throttleUs > 0)
        std::cout << "  [THROTTLED " << opts.throttleUs << " us/query]";
    if (opts.traceSample > 0)
        std::cout << "  trace-sample: 1/" << opts.traceSample;
    std::cout << "\n\n";

    const auto dlrm = std::make_shared<model::Dlrm>(benchConfig());
    std::vector<SweepResult> sweep;
    for (const std::size_t t : opts.threads) {
        SweepResult r = runPoint(dlrm, opts, t, 0);
        if (opts.traceSample > 0) {
            // Overhead is the difference of two closed-loop windows,
            // which is hopelessly noisy under CI's shared CPUs if
            // measured once: a single scheduler hiccup swamps the few
            // percent being gated. Run adjacent untraced/traced pairs
            // and keep the *minimum* pairwise overhead — a systematic
            // cost (tracing genuinely slowing the hot path) shows up
            // in every pair, while a noise spike must hit all three
            // pairs the same way to leak through.
            double overhead = 0.0;
            for (int rep = 0; rep < 3; ++rep) {
                const SweepResult u = runPoint(dlrm, opts, t, 0);
                const SweepResult tr =
                    runPoint(dlrm, opts, t, opts.traceSample);
                r.qps = std::max(r.qps, u.qps);
                r.qpsTraced = std::max(r.qpsTraced, tr.qps);
                // Gate the stricter window: tracing ON must stay at
                // zero steady-state allocations.
                r.allocsPerQuery =
                    std::max(r.allocsPerQuery, tr.allocsPerQuery);
                const double pair =
                    u.qps > 0.0
                        ? std::max(0.0,
                                   (u.qps - tr.qps) / u.qps * 100.0)
                        : 0.0;
                overhead = rep == 0 ? pair : std::min(overhead, pair);
            }
            r.traceOverheadPct = overhead;
        }
        sweep.push_back(std::move(r));
    }

    TablePrinter table({"workers", "QPS", "p50 ms", "p95 ms", "max ms",
                        "mean batch", "allocs/q", "trace ov %"});
    for (const auto &r : sweep)
        table.addRow({TablePrinter::num(static_cast<std::int64_t>(
                          r.threads)),
                      TablePrinter::num(r.qps, 1),
                      TablePrinter::num(r.p50Ms, 3),
                      TablePrinter::num(r.p95Ms, 3),
                      TablePrinter::num(r.maxMs, 3),
                      TablePrinter::num(r.meanBatch, 2),
                      TablePrinter::num(r.allocsPerQuery, 3),
                      TablePrinter::num(r.traceOverheadPct, 2)});
    table.print(std::cout);
    const double scaling =
        sweep.front().qps > 0.0 ? sweep.back().qps / sweep.front().qps
                                : 0.0;
    std::cout << "QPS scaling " << sweep.front().threads << " -> "
              << sweep.back().threads << " workers: "
              << TablePrinter::ratio(scaling) << "\n\n";

    std::cout << "Modeled RPC round-trip cost of batch coalescing "
                 "(512 B req / 2 KiB resp):\n";
    printBatchingModel();

    writeJson(opts.out, opts, sweep);
    std::cout << "\nwrote " << opts.out << "\n";
    return 0;
}

} // namespace
} // namespace erec::bench

int
main(int argc, char **argv)
{
    return erec::bench::run(argc, argv);
}
