/**
 * @file
 * Figure 3: the fraction of FLOPs, memory consumption and end-to-end
 * inference latency attributable to the sparse embedding layers versus
 * the dense DNN layers, for RM1/RM2/RM3 on CPU-only and CPU-GPU
 * platforms.
 *
 * Paper reference points: dense layers account for ~98-99.9% of FLOPs
 * but only ~0.02-0.4% of memory; for RM1 the dense layers take 67% of
 * CPU-only latency and 19% of CPU-GPU latency.
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Figure 3: sparse vs dense layer breakdown",
                  "dense ~98%+ of FLOPs, ~0.02-0.4% of memory; RM1 "
                  "dense latency 67% (CPU-only) / 19% (CPU-GPU)");

    TablePrinter flops({"model", "dense FLOPs", "sparse FLOPs",
                        "sparse FLOP %", "dense mem %",
                        "sparse mem %"});
    for (const auto &config : model::tableIIModels()) {
        flops.addRow(
            {config.name,
             TablePrinter::num(static_cast<std::int64_t>(
                 config.denseFlopsPerQuery())),
             TablePrinter::num(static_cast<std::int64_t>(
                 config.sparseFlopsPerQuery())),
             TablePrinter::percent(config.sparseFlopsFraction()),
             TablePrinter::percent(config.denseMemoryFraction(), 4),
             TablePrinter::percent(1.0 - config.denseMemoryFraction(),
                                   4)});
    }
    std::cout << "\n(a) FLOPs and memory consumption "
                 "(architecture-independent)\n";
    flops.print(std::cout);

    std::cout << "\n(b) End-to-end inference latency split (model-wise "
                 "server)\n";
    TablePrinter lat({"model", "platform", "dense ms", "sparse ms",
                      "dense %", "sparse %"});
    for (const auto &config : model::tableIIModels()) {
        for (const auto &node :
             {hw::cpuOnlyNode(), hw::cpuGpuNode()}) {
            core::Planner planner =
                core::Planner::forPlatform(config, node);
            const auto plan = planner.planModelWise();
            const auto &mono = plan.frontendShard();
            const double dense =
                units::toMillis(mono.stageLatencies[0]);
            const double sparse =
                units::toMillis(mono.stageLatencies[1]);
            lat.addRow({config.name,
                        node.hasGpu ? "CPU-GPU" : "CPU-only",
                        TablePrinter::num(dense, 1),
                        TablePrinter::num(sparse, 1),
                        TablePrinter::percent(dense / (dense + sparse)),
                        TablePrinter::percent(sparse /
                                              (dense + sparse))});
        }
    }
    lat.print(std::cout);

    std::cout << "\nEmbedding touch fraction per inference item "
                 "(paper: ~0.001% at pooling ~100):\n";
    for (const auto &config : model::tableIIModels()) {
        std::cout << "  " << config.name << ": "
                  << TablePrinter::percent(
                         config.embeddingTouchFraction(), 5)
                  << "\n";
    }
    return 0;
}
