/**
 * @file
 * Ablation (beyond the paper): resilience to pod failures. At steady
 * 60 QPS we crash the most-loaded frontend pod and watch recovery.
 * ElasticRec's fine-grained shards restart in seconds (a hot shard
 * reloads ~0.3 GiB of parameters), while a model-wise replica must
 * reload the entire ~26 GiB model — the same asymmetry behind the
 * paper's Figure 19 reaction-time gap, exercised here through an
 * abrupt capacity loss instead of a traffic step.
 */

#include "bench_util.h"

#include "elasticrec/sim/cluster_sim.h"

using namespace erec;

namespace {

struct Outcome
{
    std::uint64_t lost;
    std::uint64_t slaViolations;
    double worstP95Ms;
    double recoverySeconds;
};

Outcome
runWithFailure(const core::DeploymentPlan &plan,
               const hw::NodeSpec &node, const std::string &victim,
               const std::string &metrics_dir)
{
    const double target = 60.0;
    sim::SimOptions opt;
    opt.seed = 11;
    opt.traceSampleEvery = metrics_dir.empty() ? 0 : 100;
    sim::ClusterSimulation sim(
        plan, node, workload::TrafficPattern::constant(target), opt);
    const SimTime crash_at = 3 * units::kMinute;
    sim.injectPodFailure(victim, crash_at, 1);
    const auto r = sim.run(10 * units::kMinute);
    bench::printSloVerdicts(plan.policy, sim);
    bench::exportSimMetrics(metrics_dir, "failure_" + plan.policy,
                            sim);

    // Recovery time: last sample after the crash where achieved QPS
    // is below 90% of target.
    double recovery = 0.0;
    for (const auto &[t, v] : r.achievedQps.points()) {
        if (t <= crash_at + 15 * units::kSecond)
            continue;
        if (v < 0.9 * target)
            recovery = units::toSeconds(t - crash_at);
    }
    double worst_p95 = 0.0;
    for (const auto &[t, v] : r.p95LatencyMs.points()) {
        if (t > crash_at)
            worst_p95 = std::max(worst_p95, v);
    }
    return {sim.lostQueries(), r.slaViolations, worst_p95, recovery};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::quietLogs();
    bench::banner("Ablation: pod-failure resilience (RM1, CPU-only, "
                  "60 QPS, crash at t=3min)",
                  "small shards restart fast; monoliths reload tens "
                  "of GiB");

    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto plans = bench::makePlans(config, node);
    const std::string metrics_dir = bench::metricsOutDir(argc, argv);

    const auto er =
        runWithFailure(plans.elasticRec, node, "dense", metrics_dir);
    const auto mw = runWithFailure(plans.modelWise, node, "model-wise",
                                   metrics_dir);

    TablePrinter t({"policy", "crashed pod reload", "lost queries",
                    "SLA violations", "worst p95 ms",
                    "recovery (s)"});
    t.addRow({"elasticrec",
              units::formatBytes(
                  plans.elasticRec.frontendShard().memBytes),
              TablePrinter::num(static_cast<std::int64_t>(er.lost)),
              TablePrinter::num(
                  static_cast<std::int64_t>(er.slaViolations)),
              TablePrinter::num(er.worstP95Ms, 1),
              TablePrinter::num(er.recoverySeconds, 0)});
    t.addRow({"model-wise",
              units::formatBytes(
                  plans.modelWise.frontendShard().memBytes),
              TablePrinter::num(static_cast<std::int64_t>(mw.lost)),
              TablePrinter::num(
                  static_cast<std::int64_t>(mw.slaViolations)),
              TablePrinter::num(mw.worstP95Ms, 1),
              TablePrinter::num(mw.recoverySeconds, 0)});
    t.print(std::cout);
    return 0;
}
