/**
 * @file
 * Figure 15: number of CPU server nodes required to meet 100
 * queries/sec, model-wise vs ElasticRec, with a steady-state
 * simulation validating that the ElasticRec deployment actually
 * sustains the target within the SLA.
 *
 * Paper reference: 1.67x / 1.67x / 2.0x fewer nodes for RM1/RM2/RM3
 * (average cost reduction 1.7x); ElasticRec's RPC fan-out adds ~31 ms
 * of latency (~8% of the 400 ms SLA).
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Figure 15: CPU-only server nodes @ 100 QPS",
                  "paper node reductions 1.67x / 1.67x / 2.0x");
    bench::nodesFigure(hw::cpuOnlyNode(), 100.0, {1.67, 1.67, 2.0});
    return 0;
}
