/**
 * @file
 * Figure 19: robustness to dynamically changing input traffic (RM1,
 * CPU-only). Traffic rises in five increments from minute 5 to minute
 * 20 and drops back at minute 24; both serving architectures autoscale
 * via the HPA while we record achieved QPS, memory consumption and
 * P95 tail latency.
 *
 * Paper reference: ElasticRec tracks every target step quickly and
 * keeps tail latency stable under the 400 ms SLA; model-wise reacts
 * late (its QPS only reaches the target around minute 20), spikes past
 * the SLA repeatedly, and peaks at ~3.1x ElasticRec's memory.
 */

#include "bench_util.h"

#include <fstream>

#include "elasticrec/sim/cluster_sim.h"
#include "elasticrec/sim/csv.h"

using namespace erec;

namespace {

void
printSeries(const sim::SimResult &r, const char *name)
{
    std::cout << "\n--- " << name << " time series (30 s samples) ---\n";
    TablePrinter t({"t (min)", "target QPS", "achieved QPS",
                    "memory GiB", "p95 ms", "replicas"});
    const auto &pts = r.targetQps.points();
    for (std::size_t i = 0; i < pts.size(); i += 30) {
        t.addRow({TablePrinter::num(
                      units::toSeconds(pts[i].first) / 60.0, 1),
                  TablePrinter::num(pts[i].second, 0),
                  TablePrinter::num(r.achievedQps.points()[i].second,
                                    1),
                  TablePrinter::num(r.memoryGiB.points()[i].second, 1),
                  TablePrinter::num(
                      r.p95LatencyMs.points()[i].second, 1),
                  TablePrinter::num(
                      static_cast<std::int64_t>(
                          r.readyReplicas.points()[i].second))});
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::quietLogs();
    bench::banner("Figure 19: dynamic input traffic (RM1, CPU-only)",
                  "ER: fast tracking, stable P95, low memory; MW: slow "
                  "tracking, SLA spikes, ~3.1x peak memory");

    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto traffic = workload::TrafficPattern::fig19();
    const SimTime duration = 28 * units::kMinute;
    const std::string metrics_dir = bench::metricsOutDir(argc, argv);
    sim::SimOptions opt;
    opt.seed = 42;
    // Trace 1% of queries when exporting telemetry; tracing is off on
    // plain figure runs so the published numbers are untouched.
    // --trace-sample N overrides either default (sampling consumes no
    // randomness, so any rate leaves the SimResult bit-identical).
    std::uint64_t trace_sample = metrics_dir.empty() ? 0 : 100;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--trace-sample")
            trace_sample = std::stoull(argv[i + 1]);
    opt.traceSampleEvery = static_cast<std::uint32_t>(trace_sample);

    const auto plans = bench::makePlans(config, node);

    sim::ClusterSimulation er(plans.elasticRec, node, traffic, opt);
    const auto er_result = er.run(duration);
    sim::ClusterSimulation mw(plans.modelWise, node, traffic, opt);
    const auto mw_result = mw.run(duration);

    printSeries(er_result, "ElasticRec");
    printSeries(mw_result, "model-wise");

    std::cout << "\n";
    bench::printSloVerdicts("elasticrec", er);
    bench::printSloVerdicts("model-wise", mw);

    bench::exportSimMetrics(metrics_dir, "fig19_elasticrec", er);
    bench::exportSimMetrics(metrics_dir, "fig19_modelwise", mw);

    // Optional: a positional CSV base dumps full-resolution series
    // for plotting (`--metrics-out DIR` and its value are skipped).
    std::string csv_base;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--metrics-out" || arg == "--trace-sample") {
            ++i;
            continue;
        }
        csv_base = arg;
        break;
    }
    if (!csv_base.empty()) {
        std::ofstream er_csv(csv_base + "_elasticrec.csv");
        sim::writeSimResultCsv(er_csv, er_result);
        std::ofstream mw_csv(csv_base + "_modelwise.csv");
        sim::writeSimResultCsv(mw_csv, mw_result);
        std::cout << "wrote " << csv_base << "_elasticrec.csv and "
                  << csv_base << "_modelwise.csv\n";
    }

    std::cout << "\nSummary over " << units::toSeconds(duration) / 60
              << " simulated minutes:\n";
    TablePrinter t({"policy", "completed", "SLA violations",
                    "violation %", "mean ms", "p95 ms", "peak mem GiB",
                    "peak nodes"});
    const std::vector<std::pair<const sim::SimResult *, const char *>>
        rows = {{&er_result, "elasticrec"},
                {&mw_result, "model-wise"}};
    for (const auto &pr : rows) {
        const auto &r = *pr.first;
        t.addRow({pr.second,
                  TablePrinter::num(
                      static_cast<std::int64_t>(r.completed)),
                  TablePrinter::num(
                      static_cast<std::int64_t>(r.slaViolations)),
                  TablePrinter::percent(
                      static_cast<double>(r.slaViolations) /
                      std::max<std::uint64_t>(1, r.completed)),
                  TablePrinter::num(r.meanLatencyMs, 1),
                  TablePrinter::num(r.p95LatencyOverallMs, 1),
                  TablePrinter::num(units::toGiB(r.peakMemory), 1),
                  TablePrinter::num(static_cast<std::int64_t>(
                      r.peakNodes))});
    }
    t.print(std::cout);
    std::cout << "peak-memory ratio (MW / ER): "
              << TablePrinter::ratio(
                     static_cast<double>(mw_result.peakMemory) /
                     static_cast<double>(er_result.peakMemory))
              << " (paper: 3.1x)\n";
    return 0;
}
