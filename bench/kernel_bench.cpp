/**
 * @file
 * google-benchmark microbenchmarks of the library's hot kernels: the
 * embedding gather+pool, the MLP forward pass, query bucketization,
 * Zipf/locality sampling and the DP partitioner itself. These measure
 * *this host's* real performance (they are the analogue of the paper's
 * one-time profiling pass, Figure 9), independent of the calibrated
 * cluster model used by the figure benches.
 */

#include <benchmark/benchmark.h>

#include "elasticrec/core/bucketizer.h"
#include "elasticrec/core/dp_partitioner.h"
#include "elasticrec/embedding/embedding_table.h"
#include "elasticrec/model/mlp.h"
#include "elasticrec/workload/access_distribution.h"
#include "elasticrec/workload/query_generator.h"

using namespace erec;

namespace {

void
BM_GatherPool(benchmark::State &state)
{
    const auto gathers = static_cast<std::size_t>(state.range(0));
    const auto dim = static_cast<std::uint32_t>(state.range(1));
    embedding::EmbeddingTable table(1u << 20, dim);
    Rng rng(1);
    std::vector<std::uint32_t> indices(gathers);
    for (auto &i : indices)
        i = static_cast<std::uint32_t>(rng.uniformInt(
            std::uint64_t{1u << 20}));
    std::vector<std::uint32_t> offsets = {0};
    std::vector<float> out(dim);
    for (auto _ : state) {
        table.gatherPool(indices, offsets, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(gathers));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(gathers * dim * 4));
}
BENCHMARK(BM_GatherPool)
    ->Args({128, 32})
    ->Args({1024, 32})
    ->Args({4096, 32})
    ->Args({4096, 128})
    ->Args({4096, 512});

void
BM_MlpForward(benchmark::State &state)
{
    const auto batch = static_cast<std::size_t>(state.range(0));
    model::Mlp mlp(model::MlpSpec{{256, 128, 32}});
    std::vector<float> in(batch * 256, 0.1f);
    std::vector<float> out(batch * 32);
    for (auto _ : state) {
        mlp.forward(in.data(), batch, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(8)->Arg(32);

void
BM_Bucketize(benchmark::State &state)
{
    const auto shards = static_cast<std::uint32_t>(state.range(0));
    const std::uint64_t rows = 1'000'000;
    std::vector<std::uint64_t> boundaries;
    for (std::uint32_t s = 1; s <= shards; ++s)
        boundaries.push_back(rows * s / shards);
    core::Bucketizer bucketizer(boundaries);

    workload::QueryShape shape;
    shape.batchSize = 32;
    shape.numTables = 1;
    shape.gathersPerItem = 128;
    workload::QueryGenerator gen(
        shape, std::make_shared<workload::LocalityDistribution>(
                   rows, 0.9));
    const auto q = gen.next();
    for (auto _ : state) {
        auto buckets = bucketizer.bucketize(q.lookups[0]);
        benchmark::DoNotOptimize(buckets);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(q.lookups[0].numGathers()));
}
BENCHMARK(BM_Bucketize)->Arg(1)->Arg(4)->Arg(16);

void
BM_LocalitySample(benchmark::State &state)
{
    workload::LocalityDistribution dist(20'000'000, 0.9);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sampleRank(rng));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LocalitySample);

void
BM_ZipfSample(benchmark::State &state)
{
    workload::ZipfDistribution dist(20'000'000, 0.99);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sampleRank(rng));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSample);

void
BM_DpPartitioner(benchmark::State &state)
{
    const auto granules = static_cast<std::uint32_t>(state.range(0));
    auto cost = [](std::uint64_t b, std::uint64_t e) {
        const double len = static_cast<double>(e - b);
        return len * len / static_cast<double>(b + 1);
    };
    for (auto _ : state) {
        core::DpPartitioner::Options opt;
        opt.maxShards = 16;
        opt.granules = granules;
        core::DpPartitioner dp(20'000'000, cost, opt);
        auto plan = dp.findOptimalPlan();
        benchmark::DoNotOptimize(plan);
    }
}
BENCHMARK(BM_DpPartitioner)->Arg(128)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
