/**
 * @file
 * Microbenchmarks of the library's hot kernels. Two modes:
 *
 * Default (google-benchmark): the embedding gather+pool, the MLP
 * forward pass, query bucketization, Zipf/locality sampling and the DP
 * partitioner. These measure *this host's* real performance (they are
 * the analogue of the paper's one-time profiling pass, Figure 9),
 * independent of the calibrated cluster model used by the figure
 * benches. All google-benchmark flags pass through.
 *
 * `--json PATH`: the kernel-backend sweep feeding the CI perf gate.
 * Runs the gather-sum-pool at d in {32, 64, 128, 256} and the blocked
 * GEMM on every backend the host supports (scalar always; avx2/avx512
 * when usable) and writes benchdiff-schema JSON: one sweep entry per
 * (backend, kernel, dim) point, keyed by a stable numeric "point" id
 * (backend_index * 10 + {0..3 gather by dim, 4 gemm}), with "qps"
 * holding GB/s (gather) or GFLOP/s (GEMM) and "allocs_per_call" the
 * heap allocations inside the gather AllocGate region. The gate only
 * checks the scalar points (0-4) against bench/baselines/
 * BENCH_kernels.json, so baselines hold across hosts with different
 * ISAs:
 *
 *     kernel_bench --json BENCH_kernels.json --quick
 *     erec_benchdiff bench/baselines/BENCH_kernels.json \
 *         BENCH_kernels.json --key point --tolerance 40% \
 *         --metric-tolerance allocs_per_call=0
 *
 * JSON-mode flags:
 *   --quick           fewer reps per point for CI (default full run)
 *   --throttle-us N   sleep N us between reps — deliberately depresses
 *                     the measured rate so CI can demonstrate the
 *                     benchdiff regression gate firing
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "elasticrec/common/alloc_tracker.h"
#include "elasticrec/common/error.h"
#include "elasticrec/common/table_printer.h"
#include "elasticrec/core/bucketizer.h"
#include "elasticrec/core/dp_partitioner.h"
#include "elasticrec/embedding/embedding_table.h"
#include "elasticrec/kernels/registry.h"
#include "elasticrec/model/mlp.h"
#include "elasticrec/workload/access_distribution.h"
#include "elasticrec/workload/query_generator.h"

using namespace erec;

namespace {

void
BM_GatherPool(benchmark::State &state)
{
    const auto gathers = static_cast<std::size_t>(state.range(0));
    const auto dim = static_cast<std::uint32_t>(state.range(1));
    embedding::EmbeddingTable table(1u << 20, dim);
    Rng rng(1);
    std::vector<std::uint32_t> indices(gathers);
    for (auto &i : indices)
        i = static_cast<std::uint32_t>(rng.uniformInt(
            std::uint64_t{1u << 20}));
    std::vector<std::uint32_t> offsets = {0};
    std::vector<float> out(dim);
    const kernels::GatherRequest req(indices, offsets);
    for (auto _ : state) {
        table.gatherPool(req, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(gathers));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(gathers * dim * 4));
}
BENCHMARK(BM_GatherPool)
    ->Args({128, 32})
    ->Args({1024, 32})
    ->Args({4096, 32})
    ->Args({4096, 128})
    ->Args({4096, 512});

void
BM_MlpForward(benchmark::State &state)
{
    const auto batch = static_cast<std::size_t>(state.range(0));
    model::Mlp mlp(model::MlpSpec{{256, 128, 32}});
    std::vector<float> in(batch * 256, 0.1f);
    std::vector<float> out(batch * 32);
    for (auto _ : state) {
        mlp.forward(in.data(), batch, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(8)->Arg(32);

void
BM_Bucketize(benchmark::State &state)
{
    const auto shards = static_cast<std::uint32_t>(state.range(0));
    const std::uint64_t rows = 1'000'000;
    std::vector<std::uint64_t> boundaries;
    for (std::uint32_t s = 1; s <= shards; ++s)
        boundaries.push_back(rows * s / shards);
    core::Bucketizer bucketizer(boundaries);

    workload::QueryShape shape;
    shape.batchSize = 32;
    shape.numTables = 1;
    shape.gathersPerItem = 128;
    workload::QueryGenerator gen(
        shape, std::make_shared<workload::LocalityDistribution>(
                   rows, 0.9));
    const auto q = gen.next();
    for (auto _ : state) {
        auto buckets = bucketizer.bucketize(q.lookups[0]);
        benchmark::DoNotOptimize(buckets);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(q.lookups[0].numGathers()));
}
BENCHMARK(BM_Bucketize)->Arg(1)->Arg(4)->Arg(16);

void
BM_LocalitySample(benchmark::State &state)
{
    workload::LocalityDistribution dist(20'000'000, 0.9);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sampleRank(rng));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LocalitySample);

void
BM_ZipfSample(benchmark::State &state)
{
    workload::ZipfDistribution dist(20'000'000, 0.99);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sampleRank(rng));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSample);

void
BM_DpPartitioner(benchmark::State &state)
{
    const auto granules = static_cast<std::uint32_t>(state.range(0));
    auto cost = [](std::uint64_t b, std::uint64_t e) {
        const double len = static_cast<double>(e - b);
        return len * len / static_cast<double>(b + 1);
    };
    for (auto _ : state) {
        core::DpPartitioner::Options opt;
        opt.maxShards = 16;
        opt.granules = granules;
        core::DpPartitioner dp(20'000'000, cost, opt);
        auto plan = dp.findOptimalPlan();
        benchmark::DoNotOptimize(plan);
    }
}
BENCHMARK(BM_DpPartitioner)->Arg(128)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

} // namespace

// ---------------------------------------------------------------------
// `--json` mode: the per-backend kernel sweep behind the CI perf gate.
// ---------------------------------------------------------------------

namespace erec::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct JsonOptions
{
    std::string out;
    std::uint64_t throttleUs = 0;
    bool quick = false;
};

/** One (backend, kernel, dim) measurement. */
struct KernelResult
{
    /** Stable benchdiff sweep key: backend_index * 10 + variant. */
    std::size_t point = 0;
    std::string backend;
    std::string kernel;
    std::uint32_t dim = 0;
    /** GB/s for gather, GFLOP/s for GEMM ("qps" in the JSON). */
    double rate = 0.0;
    double allocsPerCall = 0.0;
};

JsonOptions
parseJsonArgs(int argc, char **argv)
{
    JsonOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            opts.out = argv[++i];
        } else if (arg == "--quick") {
            opts.quick = true;
        } else if (arg == "--throttle-us" && i + 1 < argc) {
            opts.throttleUs = std::stoull(argv[++i]);
        } else {
            erec::fatal("unknown kernel_bench --json flag: " + arg);
        }
    }
    ERC_CHECK(!opts.out.empty(), "--json needs an output path");
    return opts;
}

/** Allocation count inside all tracked regions since the last reset. */
std::uint64_t
regionAllocs()
{
    std::uint64_t total = 0;
    for (const auto &stats : allocRegionStats())
        total += stats.allocs;
    return total;
}

/**
 * Time `reps` calls of `fn` (throttle sleeps excluded from nothing —
 * the throttle deliberately depresses the rate) and return
 * {units_per_call * reps / elapsed_s, region allocs per call}.
 */
template <typename Fn>
std::pair<double, double>
timedLoop(std::size_t reps, std::uint64_t throttle_us, double units,
          Fn &&fn)
{
    resetAllocRegionStats();
    const auto t0 = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
        if (throttle_us > 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(throttle_us));
        fn();
    }
    const double elapsed_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const double rate =
        units * static_cast<double>(reps) / elapsed_s / 1e9;
    const double allocs = static_cast<double>(regionAllocs()) /
                          static_cast<double>(reps);
    return {rate, allocs};
}

/**
 * Gather-sum-pool rate for one backend at one embedding dim: a
 * cache-resident table (4096 rows, <= 4 MiB at d=256 — the kernel
 * sweep measures compute, not DRAM), batch 32, pooling factor 64.
 */
KernelResult
runGatherPoint(const kernels::KernelBackend &backend,
               std::size_t backend_index, std::size_t variant,
               std::uint32_t dim, const JsonOptions &opts)
{
    constexpr std::uint64_t kRows = 4096;
    constexpr std::size_t kBatch = 32;
    constexpr std::size_t kPooling = 64;
    embedding::EmbeddingTable table(kRows, dim);

    Rng rng(7);
    std::vector<std::uint32_t> indices(kBatch * kPooling);
    for (auto &i : indices)
        i = static_cast<std::uint32_t>(rng.uniformInt(kRows));
    std::vector<std::uint32_t> offsets(kBatch);
    for (std::size_t b = 0; b < kBatch; ++b)
        offsets[b] = static_cast<std::uint32_t>(b * kPooling);
    const kernels::GatherRequest req(indices, offsets);
    std::vector<float> out(kBatch * dim);

    for (int w = 0; w < 8; ++w)
        table.gatherPool(req, out.data(), backend);

    const std::size_t reps = opts.quick ? 200 : 1000;
    const double bytes_per_call =
        static_cast<double>(indices.size()) * dim * sizeof(float);
    const auto [rate, allocs] =
        timedLoop(reps, opts.throttleUs, bytes_per_call, [&] {
            table.gatherPool(req, out.data(), backend);
            benchmark::DoNotOptimize(out.data());
        });

    KernelResult r;
    r.point = backend_index * 10 + variant;
    r.backend = backend.name();
    r.kernel = "gather";
    r.dim = dim;
    r.rate = rate;
    r.allocsPerCall = allocs;
    return r;
}

/** Blocked-GEMM rate for one backend through the MLP forward pass
 *  (batch 32, one 256 -> 128 layer). */
KernelResult
runGemmPoint(const kernels::KernelBackend &backend,
             std::size_t backend_index, const JsonOptions &opts)
{
    constexpr std::size_t kBatch = 32, kIn = 256, kOut = 128;
    model::Mlp mlp(model::MlpSpec{{kIn, kOut}}, /*seed=*/3);
    std::vector<float> in(kBatch * kIn);
    Rng rng(9);
    for (auto &v : in)
        v = static_cast<float>(rng.uniform()) - 0.5f;
    std::vector<float> out(kBatch * kOut);

    for (int w = 0; w < 8; ++w)
        mlp.forward(in.data(), kBatch, out.data(), backend);

    const std::size_t reps = opts.quick ? 200 : 2000;
    const double flops_per_call =
        2.0 * static_cast<double>(kBatch) * kIn * kOut;
    const auto [rate, allocs] =
        timedLoop(reps, opts.throttleUs, flops_per_call, [&] {
            mlp.forward(in.data(), kBatch, out.data(), backend);
            benchmark::DoNotOptimize(out.data());
        });

    KernelResult r;
    r.point = backend_index * 10 + 4;
    r.backend = backend.name();
    r.kernel = "gemm";
    r.dim = 0;
    r.rate = rate;
    r.allocsPerCall = allocs;
    return r;
}

std::string
jsonNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

/** Deterministic-format JSON for tools/benchdiff, keyed by "point". */
void
writeJson(const JsonOptions &opts,
          const std::vector<KernelResult> &sweep)
{
    std::ofstream out(opts.out);
    ERC_CHECK(out.good(),
              "cannot open bench output file " << opts.out);
    out << "{\n";
    out << "  \"bench\": \"kernel_bench\",\n";
    out << "  \"quick\": " << (opts.quick ? "true" : "false") << ",\n";
    out << "  \"throttle_us\": " << opts.throttleUs << ",\n";
    out << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto &r = sweep[i];
        out << "    {\"point\": " << r.point << ", \"backend\": \""
            << r.backend << "\", \"kernel\": \"" << r.kernel
            << "\", \"dim\": " << r.dim
            << ", \"qps\": " << jsonNum(r.rate)
            << ", \"allocs_per_call\": " << jsonNum(r.allocsPerCall)
            << "}" << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    ERC_CHECK(out.good(),
              "failed writing bench output " << opts.out);
}

int
runJson(int argc, char **argv)
{
    quietLogs();
    const JsonOptions opts = parseJsonArgs(argc, argv);
    banner("Kernel-backend sweep (gather-sum-pool + blocked GEMM)",
           "DESIGN.md section 11 (no paper figure; CI perf gate input)");
    const auto &backends = kernels::availableBackends();
    std::cout << "backends:";
    for (const auto *b : backends)
        std::cout << " " << b->name();
    if (opts.throttleUs > 0)
        std::cout << "  [THROTTLED " << opts.throttleUs << " us/rep]";
    std::cout << "\n\n";

    const std::uint32_t dims[] = {32, 64, 128, 256};
    std::vector<KernelResult> sweep;
    for (std::size_t bi = 0; bi < backends.size(); ++bi) {
        for (std::size_t di = 0; di < 4; ++di)
            sweep.push_back(runGatherPoint(*backends[bi], bi, di,
                                           dims[di], opts));
        sweep.push_back(runGemmPoint(*backends[bi], bi, opts));
    }

    TablePrinter table(
        {"backend", "kernel", "dim", "rate", "allocs/call"});
    for (const auto &r : sweep)
        table.addRow(
            {r.backend, r.kernel,
             r.dim > 0 ? TablePrinter::num(
                             static_cast<std::int64_t>(r.dim))
                       : std::string("-"),
             TablePrinter::num(r.rate, 2) +
                 (r.kernel == "gemm" ? " GFLOP/s" : " GB/s"),
             TablePrinter::num(r.allocsPerCall, 3)});
    table.print(std::cout);

    // Headline number for the PR acceptance bar: widest backend vs
    // scalar on the d=128 gather.
    double scalar128 = 0.0, best128 = 0.0;
    for (const auto &r : sweep) {
        if (r.kernel != "gather" || r.dim != 128)
            continue;
        if (r.backend == "scalar")
            scalar128 = r.rate;
        best128 = std::max(best128, r.rate);
    }
    if (scalar128 > 0.0)
        std::cout << "gather-pool d=128 speedup (best backend vs "
                     "scalar): "
                  << TablePrinter::ratio(best128 / scalar128) << "\n";

    writeJson(opts, sweep);
    std::cout << "\nwrote " << opts.out << "\n";
    return 0;
}

} // namespace
} // namespace erec::bench

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--json")
            return erec::bench::runJson(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
