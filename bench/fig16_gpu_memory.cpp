/**
 * @file
 * Figure 16: CPU-GPU memory consumption of model-wise vs ElasticRec at
 * 200 queries/sec.
 *
 * Paper reference: 2.7x / 3.6x / 2.6x reductions; RM3's advantage
 * shrinks versus CPU-only because the GPU absorbs its heavy MLPs.
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Figure 16: CPU-GPU memory consumption @ 200 QPS",
                  "paper reductions 2.7x / 3.6x / 2.6x");
    bench::memoryFigure(hw::cpuGpuNode(), 200.0, {2.7, 3.6, 2.6});

    // The paper's RM3 contrast: CPU-only 8.1x vs CPU-GPU 2.6x because
    // dense work is offloaded. Show the same contrast here.
    const auto rm3 = model::rm3();
    const auto cpu = bench::makePlans(rm3, hw::cpuOnlyNode());
    const auto gpu = bench::makePlans(rm3, hw::cpuGpuNode());
    const double cpu_ratio =
        static_cast<double>(cpu.modelWise.memoryForTarget(100.0)) /
        static_cast<double>(cpu.elasticRec.memoryForTarget(100.0));
    const double gpu_ratio =
        static_cast<double>(gpu.modelWise.memoryForTarget(200.0)) /
        static_cast<double>(gpu.elasticRec.memoryForTarget(200.0));
    std::cout << "\nRM3 reduction, CPU-only vs CPU-GPU: "
              << TablePrinter::ratio(cpu_ratio) << " vs "
              << TablePrinter::ratio(gpu_ratio)
              << " (paper: 8.1x vs 2.6x — GPU offload shrinks the "
                 "gap)\n";
    return 0;
}
