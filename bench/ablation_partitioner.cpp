/**
 * @file
 * Ablation: the DP partitioner (Algorithm 2) versus two simpler
 * heuristics over the same cost model —
 *   equal-split: divide the sorted table into S equal-row shards;
 *   hot-cold:    a two-way split at the hot-set boundary (top 10%).
 * Reported as estimated deployment memory at the paper's DP target
 * traffic of 1000 queries/sec, using Algorithm 1's COST directly.
 */

#include "bench_util.h"

#include "elasticrec/core/cost_model.h"

using namespace erec;

namespace {

double
planCost(const core::CostModel &cost,
         const std::vector<std::uint64_t> &boundaries)
{
    double total = 0;
    std::uint64_t begin = 0;
    for (auto end : boundaries) {
        total += cost.cost(begin, end);
        begin = end;
    }
    return total;
}

} // namespace

int
main()
{
    bench::quietLogs();
    bench::banner("Ablation: DP partitioner vs heuristics",
                  "Algorithm 2 vs equal-split and hot/cold split");

    const auto node = hw::cpuOnlyNode();
    for (const auto &config : model::tableIIModels()) {
        core::Planner planner(config, node);
        const auto cdf = sim::cdfFor(config);

        core::CostModelParams params;
        params.gathersPerQuery =
            static_cast<double>(config.gathersPerQueryPerTable());
        params.rowBytes = Bytes{config.embeddingDim} * 4;
        params.minMemAlloc = planner.options().minMemAlloc;
        core::CostModel cost(
            std::make_shared<embedding::AccessCdf>(*cdf),
            planner.sparseQpsModel(), params);

        const auto dp = planner.partitionTable(*cdf);
        const std::uint64_t rows = config.rowsPerTable;

        TablePrinter t({"strategy", "shards", "est. memory",
                        "vs DP"});
        const double dp_cost = dp.cost;
        t.addRow({"DP (Algorithm 2)",
                  TablePrinter::num(static_cast<std::int64_t>(
                      dp.numShards())),
                  units::formatBytes(static_cast<Bytes>(dp_cost)),
                  "1.00x"});

        for (std::uint32_t s : {2u, 4u, 8u}) {
            std::vector<std::uint64_t> eq;
            for (std::uint32_t i = 1; i <= s; ++i)
                eq.push_back(rows * i / s);
            const double c = planCost(cost, eq);
            t.addRow({"equal-split " + std::to_string(s),
                      TablePrinter::num(static_cast<std::int64_t>(s)),
                      units::formatBytes(static_cast<Bytes>(c)),
                      TablePrinter::ratio(c / dp_cost)});
        }
        {
            const std::vector<std::uint64_t> hc = {rows / 10, rows};
            const double c = planCost(cost, hc);
            t.addRow({"hot/cold @10%", "2",
                      units::formatBytes(static_cast<Bytes>(c)),
                      TablePrinter::ratio(c / dp_cost)});
        }
        std::cout << "\n" << config.name << ":\n";
        t.print(std::cout);
    }
    std::cout << "(the DP plan should never lose to a heuristic under "
                 "the same cost model)\n";
    return 0;
}
