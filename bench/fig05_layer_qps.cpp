/**
 * @file
 * Figure 5: service throughput (QPS) of the dense DNN and sparse
 * embedding layers measured separately, per model, on CPU-only and
 * CPU-GPU platforms.
 *
 * Paper reference: a significant QPS mismatch exists between the two
 * layer types on both platforms, motivating per-layer resource scaling
 * (the Figure 4 argument).
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Figure 5: isolated dense vs sparse layer QPS",
                  "large dense/sparse QPS mismatch on both platforms");

    for (const auto &node : {hw::cpuOnlyNode(), hw::cpuGpuNode()}) {
        std::cout << "\n" << (node.hasGpu ? "(b) CPU-GPU" : "(a) CPU-only")
                  << " system (" << node.name << ")\n";
        TablePrinter t({"model", "dense QPS", "sparse QPS (all tables)",
                        "mismatch"});
        for (const auto &config : model::tableIIModels()) {
            core::Planner planner =
                core::Planner::forPlatform(config, node);
            // Dense: a whole-node dense stage; sparse: the embedding
            // layer of all tables executing locally on the node.
            const auto plan = planner.planModelWise();
            const auto &mono = plan.frontendShard();
            const double dense_qps =
                1.0 / units::toSeconds(mono.stageLatencies[0]);
            const double sparse_qps =
                1.0 / units::toSeconds(mono.stageLatencies[1]);
            const double mismatch =
                std::max(dense_qps, sparse_qps) /
                std::min(dense_qps, sparse_qps);
            t.addRow({config.name, TablePrinter::num(dense_qps, 1),
                      TablePrinter::num(sparse_qps, 1),
                      TablePrinter::ratio(mismatch, 1)});
        }
        t.print(std::cout);
    }
    return 0;
}
