/**
 * @file
 * Figure 13: CPU-only memory consumption of model-wise vs ElasticRec
 * for RM1/RM2/RM3 at the paper's fleet target of 100 queries/sec.
 *
 * Paper reference: 2.2x / 2.6x / 8.1x reductions (average 3.3x across
 * the paper's headline figure), with the DP choosing 4/3/3 shards per
 * table.
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Figure 13: CPU-only memory consumption @ 100 QPS",
                  "paper reductions 2.2x / 2.6x / 8.1x");
    bench::memoryFigure(hw::cpuOnlyNode(), 100.0, {2.2, 2.6, 8.1});
    return 0;
}
