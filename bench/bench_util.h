#pragma once

/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries. Each
 * binary regenerates one table or figure of the paper: it builds the
 * relevant workload and deployment plans, runs the static evaluation
 * and/or the cluster simulation, and prints the same rows/series the
 * paper reports, plus the paper's reference numbers for comparison.
 */

#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "elasticrec/common/logging.h"
#include "elasticrec/common/table_printer.h"
#include "elasticrec/core/planner.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/model/dlrm_config.h"
#include "elasticrec/obs/export.h"
#include "elasticrec/obs/perfetto.h"
#include "elasticrec/sim/experiment.h"

namespace erec::bench {

/** Print a figure banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "\n==================================================="
                 "=====================\n"
              << title << "\n"
              << "Paper reference: " << paper_ref << "\n"
              << "====================================================="
                 "===================\n";
}

/** Build the three deployment plans for one workload and platform. */
struct PlanSet
{
    core::DeploymentPlan elasticRec;
    core::DeploymentPlan modelWise;
};

inline PlanSet
makePlans(const model::DlrmConfig &config, const hw::NodeSpec &node,
          std::uint32_t cdf_granules = 1024)
{
    core::Planner planner = core::Planner::forPlatform(config, node);
    const auto cdf = sim::cdfFor(config, cdf_granules);
    return PlanSet{planner.planElasticRec({cdf}),
                   planner.planModelWise()};
}

/** Quiet logging for benches. */
inline void
quietLogs()
{
    setLogLevel(LogLevel::Warn);
}

/**
 * Parse the shared `--metrics-out DIR` flag (anywhere in argv); returns
 * an empty string when the flag is absent.
 */
inline std::string
metricsOutDir(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--metrics-out")
            return argv[i + 1];
    return {};
}

/**
 * Dump one simulation's telemetry as `<dir>/<stem>.prom` plus
 * `<stem>_traces.jsonl` and `<stem>_perfetto.json` (when tracing was
 * on; the latter loads directly into ui.perfetto.dev /
 * chrome://tracing) and `<stem>_alerts.jsonl` (the SLO alert log,
 * always written so "no transitions" is a recorded verdict rather
 * than a missing file). No-op when `dir` is empty, so binaries can
 * call it unconditionally.
 */
inline void
exportSimMetrics(const std::string &dir, const std::string &stem,
                 sim::ClusterSimulation &sim)
{
    if (dir.empty())
        return;
    const auto &traces = sim.traces();
    obs::ExportArtifacts artifacts;
    artifacts.traces = traces.empty() ? nullptr : &traces;
    artifacts.alerts = &sim.alertEvents();
    obs::writeMetricsFiles(dir, stem, sim.observability(), artifacts);
    if (!traces.empty()) {
        std::ofstream perfetto(dir + "/" + stem + "_perfetto.json");
        obs::writePerfettoJson(perfetto, traces);
    }
    std::cout << "telemetry: " << dir << "/" << stem << ".prom";
    if (!traces.empty())
        std::cout << " (+" << stem << "_traces.jsonl, +" << stem
                  << "_perfetto.json)";
    std::cout << " (+" << stem << "_alerts.jsonl)\n";
}

/** One line per SLO rule transition, for the bench stdout logs. */
inline void
printSloVerdicts(const std::string &label, sim::ClusterSimulation &sim)
{
    const auto &events = sim.alertEvents();
    std::cout << label << " SLO verdict: " << events.size()
              << " alert transition" << (events.size() == 1 ? "" : "s")
              << "\n";
    for (const auto &e : events)
        std::cout << "  [" << TablePrinter::num(units::toSeconds(e.time), 1)
                  << "s] " << e.alert << " "
                  << (e.firing ? "FIRING" : "resolved")
                  << " (value " << TablePrinter::num(e.value, 3) << ")\n";
}

/**
 * Figures 13/16: memory consumption of model-wise vs ElasticRec for
 * the three Table II workloads at a fleet target QPS.
 *
 * @param paper_reductions The paper's reported reduction factors for
 *        RM1/RM2/RM3 on this platform.
 */
inline void
memoryFigure(const hw::NodeSpec &node, double target_qps,
             const double (&paper_reductions)[3])
{
    TablePrinter t({"model", "model-wise", "ElasticRec", "measured",
                    "paper", "shards/table"});
    double geo = 1.0;
    int i = 0;
    for (const auto &config : model::tableIIModels()) {
        const auto plans = makePlans(config, node);
        const auto mw =
            sim::evaluateStatic(plans.modelWise, node, target_qps)
                .memory;
        const auto er =
            sim::evaluateStatic(plans.elasticRec, node, target_qps)
                .memory;
        const double ratio =
            static_cast<double>(mw) / static_cast<double>(er);
        geo *= ratio;
        t.addRow({config.name, units::formatBytes(mw),
                  units::formatBytes(er), TablePrinter::ratio(ratio),
                  TablePrinter::ratio(paper_reductions[i]),
                  TablePrinter::num(static_cast<std::int64_t>(
                      plans.elasticRec.tableShards(0).size()))});
        ++i;
    }
    t.print(std::cout);
    std::cout << "average (geomean) memory reduction: "
              << TablePrinter::ratio(std::pow(geo, 1.0 / 3.0)) << "\n";
}

/**
 * Figures 14/17: per-shard memory utility over the first 1,000 queries
 * and the replica count each shard needs at the fleet target, for the
 * first table of every Table II workload, compared with the model-wise
 * monolithic layout.
 */
inline void
utilityFigure(const hw::NodeSpec &node, double target_qps)
{
    for (const auto &config : model::tableIIModels()) {
        const auto plans = makePlans(config, node);
        const auto shards = plans.elasticRec.tableShards(0);
        std::vector<std::uint64_t> boundaries;
        for (const auto *s : shards)
            boundaries.push_back(s->endRow);
        const auto er_report = sim::measureUtility(
            config, boundaries, shards, target_qps,
            {.numQueries = 1000});
        const auto mw_report = sim::measureUtility(
            config, {config.rowsPerTable},
            {&plans.modelWise.frontendShard()}, target_qps,
            {.numQueries = 1000});

        std::cout << "\n" << config.name << " (table 0):\n";
        TablePrinter t({"shard", "rows", "utility", "replicas@" +
                            TablePrinter::num(target_qps, 0)});
        t.addRow({"MW S1",
                  TablePrinter::num(static_cast<std::int64_t>(
                      config.rowsPerTable)),
                  TablePrinter::percent(mw_report.shardUtility[0]),
                  TablePrinter::num(static_cast<std::int64_t>(
                      mw_report.shardReplicas[0]))});
        for (std::size_t s = 0; s < shards.size(); ++s) {
            t.addRow({"ER S" + std::to_string(s + 1),
                      TablePrinter::num(static_cast<std::int64_t>(
                          shards[s]->endRow - shards[s]->beginRow)),
                      TablePrinter::percent(er_report.shardUtility[s]),
                      TablePrinter::num(static_cast<std::int64_t>(
                          er_report.shardReplicas[s]))});
        }
        t.print(std::cout);
        const double gain =
            er_report.shardUtility.front() /
            std::max(1e-9, mw_report.shardUtility[0]);
        std::cout << "  hottest-shard utility gain vs model-wise: "
                  << TablePrinter::ratio(gain, 1) << "\n";
    }
}

/**
 * Figures 15/18: server nodes needed to meet the fleet target QPS,
 * validated with a steady-state simulation run (achieved QPS and P95
 * latency under the planned replica counts).
 */
inline void
nodesFigure(const hw::NodeSpec &node, double target_qps,
            const double (&paper_reductions)[3])
{
    TablePrinter t({"model", "MW nodes", "ER nodes", "measured",
                    "paper", "ER achieved QPS", "ER p95 ms",
                    "ER mean ms"});
    int i = 0;
    for (const auto &config : model::tableIIModels()) {
        const auto plans = makePlans(config, node);
        const auto mw = sim::evaluateStatic(plans.modelWise, node,
                                            target_qps);
        const auto er = sim::runSteadyState(
            plans.elasticRec, node, target_qps,
            {.duration = 60 * units::kSecond});
        t.addRow({config.name,
                  TablePrinter::num(static_cast<std::int64_t>(
                      mw.nodes)),
                  TablePrinter::num(static_cast<std::int64_t>(
                      er.staticView.nodes)),
                  TablePrinter::ratio(static_cast<double>(mw.nodes) /
                                      er.staticView.nodes),
                  TablePrinter::ratio(paper_reductions[i]),
                  TablePrinter::num(er.achievedQps, 1),
                  TablePrinter::num(er.p95LatencyMs, 1),
                  TablePrinter::num(er.meanLatencyMs, 1)});
        ++i;
    }
    t.print(std::cout);
}

} // namespace erec::bench
