/**
 * @file
 * Figure 18: number of CPU-GPU server nodes required to meet 200
 * queries/sec, with steady-state simulation validation.
 *
 * Paper reference: 1.4x / 1.6x / 1.2x fewer nodes for RM1/RM2/RM3;
 * ElasticRec's communication adds ~60 ms (~15% of the SLA).
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Figure 18: CPU-GPU server nodes @ 200 QPS",
                  "paper node reductions 1.4x / 1.6x / 1.2x");
    bench::nodesFigure(hw::cpuGpuNode(), 200.0, {1.4, 1.6, 1.2});
    return 0;
}
