/**
 * @file
 * Figure 6: sorted access frequency of embedding vectors in the
 * (synthesized) Amazon Books, Criteo and MovieLens datasets, on a
 * log-log-style grid.
 *
 * Paper reference: power-law access distributions where, e.g., 94% of
 * MovieLens accesses are covered by the top 10% of table entries.
 */

#include "bench_util.h"

#include "elasticrec/workload/datasets.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Figure 6: sorted embedding access frequency",
                  "power law; MovieLens P=94% over top 10% of entries");

    const std::uint64_t total_accesses = 100'000'000;
    for (const auto &shape : workload::allDatasetShapes()) {
        std::cout << "\n(" << shape.name << ", " << shape.numRows
                  << " rows, P = "
                  << TablePrinter::percent(shape.localityP) << ")\n";
        TablePrinter t({"rank", "expected accesses"});
        const auto curve = workload::sortedFrequencyCurve(
            *shape.distribution, total_accesses, 16);
        for (const auto &[rank, count] : curve) {
            t.addRow({TablePrinter::num(
                          static_cast<std::int64_t>(rank + 1)),
                      TablePrinter::num(count, 2)});
        }
        t.print(std::cout);
        std::cout << "  coverage by top 1% / 10% / 50% of rows: "
                  << TablePrinter::percent(
                         shape.distribution->massOfTopRows(
                             shape.numRows / 100))
                  << " / "
                  << TablePrinter::percent(
                         shape.distribution->massOfTopRows(
                             shape.numRows / 10))
                  << " / "
                  << TablePrinter::percent(
                         shape.distribution->massOfTopRows(
                             shape.numRows / 2))
                  << "\n";
    }
    return 0;
}
