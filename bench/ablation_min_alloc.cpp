/**
 * @file
 * Ablation: the per-container minimum memory allocation, the term that
 * produces the Figure 12(d) plateau. Sweeping min_mem_alloc changes
 * both the DP's chosen shard count (larger fixed cost -> fewer shards)
 * and the deployed memory.
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Ablation: per-container minimum allocation",
                  "drives the Figure 12(d) plateau and the DP's "
                  "shard-count choice");

    const auto node = hw::cpuOnlyNode();
    const auto config = model::rm1();
    const double target = 100.0;

    TablePrinter t({"min alloc", "DP shards/table", "ER memory",
                    "vs model-wise"});
    for (Bytes alloc :
         {32 * units::kMiB, 128 * units::kMiB, 256 * units::kMiB,
          512 * units::kMiB, units::kGiB, 2 * units::kGiB}) {
        core::PlannerOptions opt;
        opt.minMemAlloc = alloc;
        core::Planner planner(config, node, opt);
        const auto cdf = sim::cdfFor(config);
        const auto er = planner.planElasticRec({cdf});
        const auto mw = planner.planModelWise();
        const auto er_mem = er.memoryForTarget(target);
        const auto mw_mem = mw.memoryForTarget(target);
        t.addRow({units::formatBytes(alloc),
                  TablePrinter::num(static_cast<std::int64_t>(
                      er.tableShards(0).size())),
                  units::formatBytes(er_mem),
                  TablePrinter::ratio(static_cast<double>(mw_mem) /
                                      er_mem)});
    }
    t.print(std::cout);
    std::cout << "(small allocations let the DP shard aggressively; "
                 "large ones push it back toward coarse shards)\n";
    return 0;
}
