/**
 * @file
 * Figure 12 (Table I microbenchmarks): memory consumption of
 * model-wise vs ElasticRec on the CPU-only platform while sweeping
 * (a) MLP size, (b) embedding-table locality, (c) number of tables and
 * (d) the (manually forced) number of shards per table.
 *
 * Paper reference points: memory grows quickly with MLP size under
 * model-wise but only modestly under ElasticRec; high locality buys
 * ElasticRec ~2.2x savings while model-wise is flat; savings scale
 * with table count; and the shard-count sweep plateaus around the
 * DP-chosen optimum (4 shards) because of per-container minimum
 * allocations.
 */

#include "bench_util.h"

using namespace erec;

namespace {

const double kTargetQps = 100.0;

void
addComparison(TablePrinter &t, const std::string &label,
              const model::DlrmConfig &config,
              const core::PlannerOptions &opt)
{
    const auto node = hw::cpuOnlyNode();
    core::Planner planner(config, node, opt);
    const auto cdf = sim::cdfFor(config);
    const auto er = planner.planElasticRec({cdf});
    const auto mw = planner.planModelWise();
    const auto er_mem = er.memoryForTarget(kTargetQps);
    const auto mw_mem = mw.memoryForTarget(kTargetQps);
    t.addRow({label, units::formatBytes(mw_mem),
              units::formatBytes(er_mem),
              TablePrinter::ratio(static_cast<double>(mw_mem) /
                                  static_cast<double>(er_mem)),
              TablePrinter::num(static_cast<std::int64_t>(
                  er.tableShards(0).size()))});
}

} // namespace

int
main()
{
    bench::quietLogs();
    bench::banner("Figure 12: Table I microbenchmarks (CPU-only, "
                  "100 QPS)",
                  "(a) MLP size sweep, (b) locality sweep, (c) table "
                  "count sweep, (d) shard count sweep with plateau");

    {
        std::cout << "\n(a) MLP layer size (locality High, 10 tables)\n";
        TablePrinter t({"MLP", "model-wise mem", "ElasticRec mem",
                        "reduction", "DP shards/table"});
        for (auto size : {model::MlpSize::Light, model::MlpSize::Medium,
                          model::MlpSize::Heavy}) {
            addComparison(t, model::toString(size),
                          model::microBenchmark(
                              size, model::LocalityLevel::High),
                          core::PlannerOptions{});
        }
        t.print(std::cout);
    }

    {
        std::cout << "\n(b) Embedding table locality (Medium MLP)\n";
        TablePrinter t({"locality P", "model-wise mem",
                        "ElasticRec mem", "reduction",
                        "DP shards/table"});
        for (auto level :
             {model::LocalityLevel::Low, model::LocalityLevel::Medium,
              model::LocalityLevel::High}) {
            addComparison(
                t,
                std::string(model::toString(level)) + " (" +
                    TablePrinter::percent(model::localityValue(level),
                                          0) +
                    ")",
                model::microBenchmark(model::MlpSize::Medium, level),
                core::PlannerOptions{});
        }
        t.print(std::cout);
    }

    {
        std::cout << "\n(c) Total number of tables (Medium MLP, High "
                     "locality)\n";
        TablePrinter t({"tables", "model-wise mem", "ElasticRec mem",
                        "reduction", "DP shards/table"});
        for (std::uint32_t n : {1u, 4u, 10u, 16u}) {
            addComparison(t, std::to_string(n),
                          model::microBenchmark(
                              model::MlpSize::Medium,
                              model::LocalityLevel::High, n),
                          core::PlannerOptions{});
        }
        t.print(std::cout);
    }

    {
        std::cout << "\n(d) Number of shards per table (manual "
                     "override; 0 = DP optimum)\n";
        const auto config = model::microBenchmark(
            model::MlpSize::Medium, model::LocalityLevel::High);
        TablePrinter t({"shards/table", "ElasticRec mem",
                        "vs model-wise"});
        const auto node = hw::cpuOnlyNode();
        Bytes mw_mem = 0;
        {
            core::Planner planner(config, node);
            mw_mem = planner.planModelWise().memoryForTarget(
                kTargetQps);
        }
        for (std::uint32_t shards : {1u, 2u, 4u, 8u, 16u, 0u}) {
            core::PlannerOptions opt;
            opt.forceShards = shards;
            core::Planner planner(config, node, opt);
            const auto er =
                planner.planElasticRec({sim::cdfFor(config)});
            const auto mem = er.memoryForTarget(kTargetQps);
            t.addRow({shards == 0
                          ? "DP (" + std::to_string(
                                er.tableShards(0).size()) + ")"
                          : std::to_string(shards),
                      units::formatBytes(mem),
                      TablePrinter::ratio(
                          static_cast<double>(mw_mem) /
                          static_cast<double>(mem))});
        }
        t.print(std::cout);
        std::cout << "  (memory should improve with more shards, then "
                     "plateau near the DP optimum as min-alloc "
                     "overheads accumulate)\n";
    }
    return 0;
}
