/**
 * @file
 * Figure 14: CPU-only memory utility per embedding shard (fraction of
 * shard rows actually touched over the first 1,000 queries) and the
 * replica count each shard needs at 100 queries/sec.
 *
 * Paper reference: model-wise averages ~6% utility; ElasticRec's
 * hotter shards show consistently higher utility and replica counts
 * proportional to hotness (average 8.1x utility gain).
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Figure 14: CPU-only memory utility @ 100 QPS",
                  "MW ~6% utility; ER hot shards near 100%, ~8.1x gain");
    bench::utilityFigure(hw::cpuOnlyNode(), 100.0);
    return 0;
}
