/**
 * @file
 * Simulator-core throughput harness: drives the discrete-event engine
 * through a multi-million-query diurnal trace on both deployment plans
 * (ElasticRec and the model-wise baseline) and reports how fast the
 * *simulator itself* runs — simulated queries per wall-clock second,
 * events per query, and heap allocations per query inside the gated
 * query path (pinned at exactly zero by the CI perf gate).
 *
 * Machine-readable output goes to BENCH_sim.json (override with
 * --out); the CI perf gate compares it against
 * bench/baselines/BENCH_sim.json with tools/benchdiff:
 *
 *     sim_throughput --quick --out BENCH_sim.json
 *     erec_benchdiff bench/baselines/BENCH_sim.json BENCH_sim.json \
 *         --key point --tolerance 60% \
 *         --metric-tolerance allocs_per_query=0
 *
 * The sweep's "qps" field is simulated-queries-per-wall-second (the
 * benchdiff rate contract), not the trace's arrival rate.
 *
 * Trace shape: a raised-cosine diurnal cycle (trough 100, peak
 * 500 QPS — the envelope the rm1/cpuOnlyNode fleet can track within
 * its 400 ms SLA; ~26M queries/day, millions of daily users) from
 * workload::TrafficPattern::diurnal(). The first three quarters of a
 * cycle are warm-up: they carry the trace over its first peak so every
 * capacity high-water mark (query arena, event heap, stage rings, rate
 * windows) is set before the alloc counters are zeroed, then the timed
 * window runs the remaining cycles in steady state.
 *
 * Flags:
 *   --quick           ~200k measured queries per plan for CI
 *                     (default: 10M per plan — measured ~8 min for
 *                     the ElasticRec plan, whose ~30-shard fan-out
 *                     costs ~120 events per query, and ~3 min for
 *                     model-wise; the quick run takes seconds)
 *   --queries N       measured queries per plan (overrides --quick)
 *   --out PATH        JSON output path (default BENCH_sim.json)
 *   --throttle-us N   run the timed window in one-sim-second slices
 *                     with N us of sleep between slices — deliberately
 *                     depresses the simulator's wall-clock rate so CI
 *                     can demonstrate the benchdiff gate firing. The
 *                     sliced replay re-enters run() per slice (extra
 *                     HPA/sample tick chains), so its numbers are only
 *                     meaningful as "slower than the floor".
 *   --metrics-out DIR dump the obs registry per plan
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "elasticrec/common/alloc_tracker.h"
#include "elasticrec/common/error.h"
#include "elasticrec/common/table_printer.h"
#include "elasticrec/sim/cluster_sim.h"
#include "elasticrec/sim/experiment.h"
#include "elasticrec/workload/traffic.h"

namespace erec::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct BenchOptions
{
    std::uint64_t queries = 10'000'000;
    std::string out = "BENCH_sim.json";
    std::string metricsOut;
    std::uint64_t throttleUs = 0;
    bool quick = false;
};

/** One plan's measurements. */
struct SweepResult
{
    std::size_t point = 0;
    std::string plan;
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    double simSeconds = 0.0;
    double wallSeconds = 0.0;
    /** Simulated queries completed per wall-clock second — the
     *  benchdiff rate field. */
    double qps = 0.0;
    double eventsPerQuery = 0.0;
    /** Heap allocations per completed query inside the sim.query_path
     *  AllocGate region during the timed window — gated at exactly
     *  zero by the CI perf gate. */
    double allocsPerQuery = 0.0;
    double meanLatencyMs = 0.0;
    double p95LatencyMs = 0.0;
    std::uint64_t scaleEvents = 0;
};

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            opts.quick = true;
            opts.queries = 200'000;
        } else if (arg == "--queries" && i + 1 < argc) {
            opts.queries = std::stoull(argv[++i]);
        } else if (arg == "--out" && i + 1 < argc) {
            opts.out = argv[++i];
        } else if (arg == "--throttle-us" && i + 1 < argc) {
            opts.throttleUs = std::stoull(argv[++i]);
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            opts.metricsOut = argv[++i];
        } else {
            erec::fatal("unknown bench flag: " + arg);
        }
    }
    ERC_CHECK(opts.queries >= 1000,
              "--queries must be at least 1000 for a meaningful rate");
    return opts;
}

/** Million-user-scale diurnal trace (DESIGN.md section 13). */
workload::TrafficPattern::DiurnalOptions
diurnalShape()
{
    workload::TrafficPattern::DiurnalOptions d;
    d.troughQps = 100.0;
    d.peakQps = 500.0;
    d.period = 10 * units::kMinute;
    d.step = units::kSecond;
    return d;
}

/** Mean arrival rate of the raised-cosine cycle. */
double
meanQps(const workload::TrafficPattern::DiurnalOptions &d)
{
    return 0.5 * (d.troughQps + d.peakQps);
}

std::uint64_t
queryPathAllocs()
{
    for (const auto &stats : allocRegionStats())
        if (std::string(stats.name) == "sim.query_path")
            return stats.allocs;
    return 0;
}

/** Run one plan: warm over the first diurnal peak, zero the region
 *  counters, then time the remaining cycles. */
SweepResult
runPoint(std::size_t point, const std::string &plan_name,
         const core::DeploymentPlan &plan, const hw::NodeSpec &node,
         const BenchOptions &opts)
{
    auto shape = diurnalShape();
    // Warm-up carries the trace past its first peak (t = period / 2)
    // so every high-water mark is set before the counters are zeroed.
    const SimTime warm = 3 * shape.period / 4;
    const SimTime measure = static_cast<SimTime>(
        static_cast<double>(opts.queries) / meanQps(shape) *
        static_cast<double>(units::kSecond));
    shape.duration = warm + measure + shape.period;

    sim::SimOptions sim_opts;
    sim_opts.seed = 42;
    sim_opts.sampling = sim::SamplingMode::EventTime;
    sim::ClusterSimulation sim(plan, node,
                               workload::TrafficPattern::diurnal(shape),
                               sim_opts);

    sim.run(warm);
    resetAllocRegionStats();
    const std::uint64_t events_before = sim.eventsExecuted();

    sim::SimResult result;
    const auto t0 = Clock::now();
    if (opts.throttleUs == 0) {
        result = sim.run(warm + measure);
    } else {
        // Self-test mode: replay the window in one-sim-second slices
        // with a sleep per slice, so the wall-clock rate collapses and
        // the benchdiff gate must fire. Counters are summed across
        // slices; latency fields are left at the last slice's values.
        for (SimTime t = warm + units::kSecond; t <= warm + measure;
             t += units::kSecond) {
            const auto slice = sim.run(t);
            result.arrivals += slice.arrivals;
            result.completed += slice.completed;
            result.scaleEvents += slice.scaleEvents;
            result.meanLatencyMs = slice.meanLatencyMs;
            result.p95LatencyOverallMs = slice.p95LatencyOverallMs;
            std::this_thread::sleep_for(
                std::chrono::microseconds(opts.throttleUs));
        }
    }
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();

    SweepResult r;
    r.point = point;
    r.plan = plan_name;
    r.arrivals = result.arrivals;
    r.completed = result.completed;
    r.simSeconds = static_cast<double>(measure) /
                   static_cast<double>(units::kSecond);
    r.wallSeconds = wall_s;
    r.qps = static_cast<double>(result.completed) / wall_s;
    r.eventsPerQuery =
        result.completed > 0
            ? static_cast<double>(sim.eventsExecuted() - events_before) /
                  static_cast<double>(result.completed)
            : 0.0;
    r.allocsPerQuery =
        result.completed > 0
            ? static_cast<double>(queryPathAllocs()) /
                  static_cast<double>(result.completed)
            : 0.0;
    r.meanLatencyMs = result.meanLatencyMs;
    r.p95LatencyMs = result.p95LatencyOverallMs;
    r.scaleEvents = result.scaleEvents;

    if (!opts.metricsOut.empty())
        exportSimMetrics(opts.metricsOut, "sim_" + plan_name, sim);
    return r;
}

std::string
jsonNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

/** Deterministic-format JSON for tools/benchdiff: one sweep entry per
 *  deployment plan, keyed by "point". */
void
writeJson(const std::string &path, const BenchOptions &opts,
          const std::vector<SweepResult> &sweep)
{
    std::ofstream out(path);
    ERC_CHECK(out.good(), "cannot open bench output file " << path);
    out << "{\n";
    out << "  \"bench\": \"sim_throughput\",\n";
    out << "  \"quick\": " << (opts.quick ? "true" : "false") << ",\n";
    out << "  \"throttle_us\": " << opts.throttleUs << ",\n";
    out << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto &r = sweep[i];
        out << "    {\"point\": " << r.point
            << ", \"plan\": \"" << r.plan << "\""
            << ", \"queries\": " << r.completed
            << ", \"arrivals\": " << r.arrivals
            << ", \"sim_seconds\": " << jsonNum(r.simSeconds)
            << ", \"wall_seconds\": " << jsonNum(r.wallSeconds)
            << ", \"qps\": " << jsonNum(r.qps)
            << ", \"events_per_query\": " << jsonNum(r.eventsPerQuery)
            << ", \"allocs_per_query\": " << jsonNum(r.allocsPerQuery)
            << ", \"mean_latency_ms\": " << jsonNum(r.meanLatencyMs)
            << ", \"p95_latency_ms\": " << jsonNum(r.p95LatencyMs)
            << ", \"scale_events\": " << r.scaleEvents << "}"
            << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    ERC_CHECK(out.good(), "failed writing bench output " << path);
}

int
run(int argc, char **argv)
{
    quietLogs();
    const BenchOptions opts = parseArgs(argc, argv);
    banner("Simulator-core throughput (event engine, diurnal trace)",
           "DESIGN.md section 13 (no paper figure; CI perf gate input)");
    const auto shape = diurnalShape();
    std::cout << "measured queries/plan: " << opts.queries
              << "  trace: raised-cosine "
              << static_cast<std::uint64_t>(shape.troughQps) << ".."
              << static_cast<std::uint64_t>(shape.peakQps)
              << " QPS, period "
              << shape.period / units::kSecond << " s";
    if (opts.throttleUs > 0)
        std::cout << "  [THROTTLED " << opts.throttleUs << " us/slice]";
    std::cout << "\n\n";

    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto plans = makePlans(config, node);

    std::vector<SweepResult> sweep;
    sweep.push_back(
        runPoint(0, "elasticrec", plans.elasticRec, node, opts));
    sweep.push_back(
        runPoint(1, "modelwise", plans.modelWise, node, opts));

    TablePrinter table({"plan", "queries", "wall s", "sim q/s",
                        "events/q", "allocs/q", "p95 ms", "scale ev"});
    for (const auto &r : sweep)
        table.addRow({r.plan,
                      TablePrinter::num(static_cast<std::int64_t>(
                          r.completed)),
                      TablePrinter::num(r.wallSeconds, 2),
                      TablePrinter::num(r.qps, 0),
                      TablePrinter::num(r.eventsPerQuery, 2),
                      TablePrinter::num(r.allocsPerQuery, 3),
                      TablePrinter::num(r.p95LatencyMs, 1),
                      TablePrinter::num(static_cast<std::int64_t>(
                          r.scaleEvents))});
    table.print(std::cout);

    writeJson(opts.out, opts, sweep);
    std::cout << "\nwrote " << opts.out << "\n";
    return 0;
}

} // namespace
} // namespace erec::bench

int
main(int argc, char **argv)
{
    return erec::bench::run(argc, argv);
}
