/**
 * @file
 * Figure 17: CPU-GPU memory utility per shard and replica counts at
 * 200 queries/sec.
 *
 * Paper reference: model-wise again averages ~6% utility; ElasticRec
 * achieves ~8x higher utility with replicas proportional to hotness.
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Figure 17: CPU-GPU memory utility @ 200 QPS",
                  "MW ~6% utility; ER ~8x higher");
    bench::utilityFigure(hw::cpuGpuNode(), 200.0);
    return 0;
}
