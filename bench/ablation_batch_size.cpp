/**
 * @file
 * Ablation (beyond the paper): sensitivity to the query batch size.
 * The paper fixes batch = 32 items per query (Section V-C); this sweep
 * shows how batch size moves the dense/sparse balance and with it the
 * memory savings: larger batches amortize the framework's per-query
 * dispatch over more items, pushing both layer types toward their
 * throughput limits.
 */

#include "bench_util.h"

using namespace erec;

int
main()
{
    bench::quietLogs();
    bench::banner("Ablation: query batch size (RM1-based, CPU-only, "
                  "100 QPS)",
                  "paper fixes batch = 32; sweep 8..128");

    const auto node = hw::cpuOnlyNode();
    TablePrinter t({"batch", "MW QPS/replica", "dense ms", "sparse ms",
                    "MW memory", "ER memory", "reduction",
                    "shards/table"});
    for (std::uint32_t batch : {8u, 16u, 32u, 64u, 128u}) {
        auto config = model::rm1();
        config.batchSize = batch;
        // Queries per second of *items* held constant: a target of 100
        // batch-32 queries/sec equals 3200 items/sec.
        const double target = 100.0 * 32.0 / batch;

        core::Planner planner(config, node);
        const auto cdf = sim::cdfFor(config);
        const auto er = planner.planElasticRec({cdf});
        const auto mw = planner.planModelWise();
        const auto &mono = mw.frontendShard();
        const auto er_mem =
            sim::evaluateStatic(er, node, target).memory;
        const auto mw_mem =
            sim::evaluateStatic(mw, node, target).memory;
        t.addRow({TablePrinter::num(static_cast<std::int64_t>(batch)),
                  TablePrinter::num(mono.qpsPerReplica, 1),
                  TablePrinter::num(
                      units::toMillis(mono.stageLatencies[0]), 1),
                  TablePrinter::num(
                      units::toMillis(mono.stageLatencies[1]), 1),
                  units::formatBytes(mw_mem),
                  units::formatBytes(er_mem),
                  TablePrinter::ratio(static_cast<double>(mw_mem) /
                                      er_mem),
                  TablePrinter::num(static_cast<std::int64_t>(
                      er.tableShards(0).size()))});
    }
    t.print(std::cout);
    return 0;
}
