#pragma once

/**
 * @file
 * Minimal validator for the Prometheus text exposition format, used by
 * the `promcheck` CLI and by tests to check what the obs exporters
 * emit. Non-throwing: all problems are collected into
 * PromParseResult::errors so callers can report every issue at once.
 *
 * Checks performed:
 *   - `# HELP` / `# TYPE` comment syntax, known metric kinds, and that
 *     TYPE precedes the first sample of its family;
 *   - metric/label name charset, label quoting and escape sequences;
 *   - sample values parse as floating point (inf/nan included);
 *   - histogram families expose `_bucket` series with ascending `le`
 *     bounds, non-decreasing cumulative counts, a `+Inf` bucket, and
 *     matching `_count` / `_sum` series;
 *   - no header-only families: a declared TYPE must be followed by at
 *     least one sample of its family.
 */

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace erec::tools {

/** One parsed sample line. */
struct PromSample
{
    std::string name;
    std::map<std::string, std::string> labels;
    double value = 0.0;
    std::size_t line = 0; ///< 1-based source line.
};

/** Outcome of parsing one exposition document. */
struct PromParseResult
{
    bool ok = false;
    std::vector<std::string> errors;
    /** Family name -> declared TYPE (counter/gauge/histogram/...). */
    std::map<std::string, std::string> types;
    /** Family name -> declared HELP string (unescaped). */
    std::map<std::string, std::string> help;
    std::vector<PromSample> samples;

    /**
     * Value of the first sample matching `name` and containing every
     * label in `labels` (extra labels on the sample are ignored).
     * Returns `fallback` when absent.
     */
    double value(const std::string &name,
                 const std::map<std::string, std::string> &labels = {},
                 double fallback = 0.0) const;

    /** Number of samples of one family (counting `_bucket` etc. as
     *  their own families, matching exposition-format naming). */
    std::size_t count(const std::string &name) const;
};

/** Parse and validate a full exposition document. */
PromParseResult parsePrometheusText(const std::string &text);

} // namespace erec::tools
