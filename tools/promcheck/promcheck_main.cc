/**
 * @file
 * promcheck: validate telemetry files emitted by the obs exporters.
 *
 *   promcheck FILE...
 *
 * `.prom` files are checked against the Prometheus text exposition
 * format (including histogram invariants); `_alerts.jsonl` files are
 * re-read through the alert-log importer and other `.jsonl` files
 * through the trace importer, both of which reject malformed lines.
 * Trace files are additionally validated against the erec_trace/v1
 * schema (span ends after start, monotonic starts on completed
 * traces, unique span ids, parents resolve) and `_perfetto.json`
 * files against the Chrome trace-event envelope (sorted timestamps,
 * balanced flow-event pairs). Exit status is non-zero when any file
 * fails.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "elasticrec/obs/export.h"
#include "elasticrec/obs/perfetto.h"
#include "elasticrec/obs/trace_schema.h"
#include "tools/promcheck/prom_parser.h"

namespace {

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
checkPromFile(const std::string &path, const std::string &text)
{
    const auto result = erec::tools::parsePrometheusText(text);
    if (!result.ok) {
        for (const auto &e : result.errors)
            std::cerr << path << ": " << e << "\n";
        return false;
    }
    std::cout << path << ": OK (" << result.samples.size()
              << " samples, " << result.types.size() << " families)\n";
    return true;
}

bool
checkTraceFile(const std::string &path, const std::string &text)
{
    try {
        const auto traces = erec::obs::readTraceJsonLines(text);
        const auto errors = erec::obs::validateTraceSchema(traces);
        if (!errors.empty()) {
            for (const auto &e : errors)
                std::cerr << path << ": "
                          << erec::obs::kTraceSchemaVersion << ": " << e
                          << "\n";
            return false;
        }
        std::cout << path << ": OK (" << traces.size() << " traces, "
                  << erec::obs::kTraceSchemaVersion << ")\n";
        return true;
    } catch (const std::exception &e) {
        std::cerr << path << ": " << e.what() << "\n";
        return false;
    }
}

bool
checkPerfettoFile(const std::string &path, const std::string &text)
{
    const auto errors = erec::obs::validatePerfettoJson(text);
    if (!errors.empty()) {
        for (const auto &e : errors)
            std::cerr << path << ": " << e << "\n";
        return false;
    }
    std::cout << path << ": OK (perfetto trace-event JSON)\n";
    return true;
}

bool
checkAlertFile(const std::string &path, const std::string &text)
{
    try {
        const auto events = erec::obs::readAlertJsonLines(text);
        std::cout << path << ": OK (" << events.size()
                  << " alert transitions)\n";
        return true;
    } catch (const std::exception &e) {
        std::cerr << path << ": " << e.what() << "\n";
        return false;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: promcheck FILE...\n"
                  << "  validates .prom (Prometheus text) and .jsonl "
                     "(trace) telemetry files\n";
        return 2;
    }
    bool ok = true;
    for (int i = 1; i < argc; ++i) {
        const std::string path = argv[i];
        std::ifstream in(path);
        if (!in) {
            std::cerr << path << ": cannot open\n";
            ok = false;
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        if (endsWith(path, "_alerts.jsonl"))
            ok = checkAlertFile(path, buf.str()) && ok;
        else if (endsWith(path, ".jsonl"))
            ok = checkTraceFile(path, buf.str()) && ok;
        else if (endsWith(path, "_perfetto.json"))
            ok = checkPerfettoFile(path, buf.str()) && ok;
        else
            ok = checkPromFile(path, buf.str()) && ok;
    }
    return ok ? 0 : 1;
}
