#include "tools/promcheck/prom_parser.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace erec::tools {

namespace {

bool
validMetricName(const std::string &s)
{
    if (s.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(s[0]))
        return false;
    return std::all_of(s.begin() + 1, s.end(), [&](char c) {
        return head(c) || (c >= '0' && c <= '9');
    });
}

bool
validLabelName(const std::string &s)
{
    if (s.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_';
    };
    if (!head(s[0]))
        return false;
    return std::all_of(s.begin() + 1, s.end(), [&](char c) {
        return head(c) || (c >= '0' && c <= '9');
    });
}

bool
parseValue(const std::string &s, double *out)
{
    if (s.empty())
        return false;
    const char *begin = s.c_str();
    char *end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end != begin + s.size())
        return false;
    *out = v;
    return true;
}

/** Per-document validation state. */
struct Checker
{
    const std::string &text;
    PromParseResult result;
    std::size_t lineNo = 0;

    explicit Checker(const std::string &t) : text(t) {}

    void fail(const std::string &message)
    {
        std::ostringstream oss;
        oss << "line " << lineNo << ": " << message;
        result.errors.push_back(oss.str());
    }

    /** Family a sample belongs to: histogram suffixes collapse onto
     *  their declared base family. */
    std::string familyOf(const std::string &sample_name) const
    {
        for (const char *suffix : {"_bucket", "_sum", "_count"}) {
            const std::string sfx = suffix;
            if (sample_name.size() > sfx.size() &&
                sample_name.compare(sample_name.size() - sfx.size(),
                                    sfx.size(), sfx) == 0) {
                const std::string base = sample_name.substr(
                    0, sample_name.size() - sfx.size());
                auto it = result.types.find(base);
                if (it != result.types.end() &&
                    it->second == "histogram")
                    return base;
            }
        }
        return sample_name;
    }

    void parseComment(const std::string &line,
                      std::map<std::string, bool> *family_has_samples)
    {
        // "# HELP <name> <text>" / "# TYPE <name> <kind>"; any other
        // comment is legal and ignored.
        std::istringstream iss(line);
        std::string hash, keyword, name;
        iss >> hash >> keyword >> name;
        if (keyword != "HELP" && keyword != "TYPE")
            return;
        if (!validMetricName(name)) {
            fail("bad metric name in " + keyword + " comment: '" +
                 name + "'");
            return;
        }
        std::string rest;
        std::getline(iss, rest);
        if (!rest.empty() && rest[0] == ' ')
            rest.erase(0, 1);
        if (keyword == "HELP") {
            if (result.help.count(name))
                fail("duplicate HELP for family '" + name + "'");
            result.help[name] = rest;
            return;
        }
        static const char *kKinds[] = {"counter", "gauge", "histogram",
                                       "summary", "untyped"};
        if (std::find(std::begin(kKinds), std::end(kKinds), rest) ==
            std::end(kKinds)) {
            fail("unknown TYPE '" + rest + "' for family '" + name +
                 "'");
            return;
        }
        if (result.types.count(name))
            fail("duplicate TYPE for family '" + name + "'");
        if ((*family_has_samples)[name])
            fail("TYPE for '" + name + "' after its first sample");
        result.types[name] = rest;
    }

    void parseSample(const std::string &line,
                     std::map<std::string, bool> *family_has_samples)
    {
        PromSample sample;
        sample.line = lineNo;
        std::size_t i = 0;
        while (i < line.size() && line[i] != '{' && line[i] != ' ')
            ++i;
        sample.name = line.substr(0, i);
        if (!validMetricName(sample.name)) {
            fail("bad metric name '" + sample.name + "'");
            return;
        }
        if (i < line.size() && line[i] == '{') {
            ++i;
            if (!parseLabels(line, &i, &sample))
                return;
        }
        while (i < line.size() && line[i] == ' ')
            ++i;
        const std::string value_text = line.substr(i);
        if (value_text.find(' ') != std::string::npos) {
            // A second field would be a timestamp; the obs exporter
            // never writes one, so reject it as unexpected.
            fail("unexpected trailing field after value: '" +
                 value_text + "'");
            return;
        }
        if (!parseValue(value_text, &sample.value)) {
            fail("unparsable sample value '" + value_text + "'");
            return;
        }
        (*family_has_samples)[familyOf(sample.name)] = true;
        result.samples.push_back(std::move(sample));
    }

    bool parseLabels(const std::string &line, std::size_t *pos,
                     PromSample *sample)
    {
        std::size_t i = *pos;
        while (true) {
            if (i >= line.size()) {
                fail("unterminated label set");
                return false;
            }
            if (line[i] == '}') {
                ++i;
                break;
            }
            std::size_t eq = line.find('=', i);
            if (eq == std::string::npos) {
                fail("label without '='");
                return false;
            }
            const std::string lname = line.substr(i, eq - i);
            if (!validLabelName(lname)) {
                fail("bad label name '" + lname + "'");
                return false;
            }
            i = eq + 1;
            if (i >= line.size() || line[i] != '"') {
                fail("label value for '" + lname + "' not quoted");
                return false;
            }
            ++i;
            std::string value;
            bool closed = false;
            while (i < line.size()) {
                const char c = line[i];
                if (c == '\\') {
                    if (i + 1 >= line.size()) {
                        fail("dangling backslash in label value");
                        return false;
                    }
                    const char esc = line[i + 1];
                    if (esc == '\\')
                        value += '\\';
                    else if (esc == '"')
                        value += '"';
                    else if (esc == 'n')
                        value += '\n';
                    else {
                        fail(std::string("bad escape '\\") + esc +
                             "' in label value");
                        return false;
                    }
                    i += 2;
                    continue;
                }
                if (c == '"') {
                    closed = true;
                    ++i;
                    break;
                }
                value += c;
                ++i;
            }
            if (!closed) {
                fail("unterminated label value for '" + lname + "'");
                return false;
            }
            if (sample->labels.count(lname)) {
                fail("duplicate label '" + lname + "'");
                return false;
            }
            sample->labels[lname] = value;
            if (i < line.size() && line[i] == ',')
                ++i;
            else if (i >= line.size() || line[i] != '}') {
                fail("expected ',' or '}' after label value");
                return false;
            }
        }
        *pos = i;
        return true;
    }

    /** Histogram families: bucket ordering, cumulativity, +Inf,
     *  _count/_sum presence. Runs after the whole document parsed. */
    void checkHistograms()
    {
        for (const auto &[family, kind] : result.types) {
            if (kind != "histogram")
                continue;
            // Group bucket samples by label set minus 'le'.
            std::map<std::string,
                     std::vector<std::pair<double, double>>>
                groups; // key -> (le, cumulative count)
            std::map<std::string, double> counts, sums;
            std::map<std::string, bool> has_count, has_sum;
            for (const auto &s : result.samples) {
                std::string key;
                auto key_of = [&](bool drop_le) {
                    std::ostringstream oss;
                    for (const auto &[k, v] : s.labels) {
                        if (drop_le && k == "le")
                            continue;
                        oss << k << "=" << v << ";";
                    }
                    return oss.str();
                };
                if (s.name == family + "_bucket") {
                    auto le = s.labels.find("le");
                    if (le == s.labels.end()) {
                        lineNo = s.line;
                        fail("bucket of '" + family +
                             "' missing 'le' label");
                        continue;
                    }
                    double bound = 0;
                    if (le->second == "+Inf")
                        bound = std::numeric_limits<double>::infinity();
                    else if (!parseValue(le->second, &bound)) {
                        lineNo = s.line;
                        fail("unparsable le='" + le->second + "'");
                        continue;
                    }
                    groups[key_of(true)].emplace_back(bound, s.value);
                } else if (s.name == family + "_count") {
                    key = key_of(false);
                    has_count[key] = true;
                    counts[key] = s.value;
                } else if (s.name == family + "_sum") {
                    key = key_of(false);
                    has_sum[key] = true;
                    sums[key] = s.value;
                }
            }
            lineNo = 0;
            for (auto &[key, buckets] : groups) {
                const std::string where =
                    "histogram '" + family + "'{" + key + "}";
                for (std::size_t i = 1; i < buckets.size(); ++i) {
                    if (buckets[i - 1].first >= buckets[i].first)
                        fail(where + ": le bounds not ascending");
                    if (buckets[i - 1].second >
                        buckets[i].second + 1e-9)
                        fail(where + ": bucket counts not cumulative");
                }
                if (buckets.empty() ||
                    !std::isinf(buckets.back().first)) {
                    fail(where + ": missing le=\"+Inf\" bucket");
                    continue;
                }
                if (!has_count[key])
                    fail(where + ": missing _count series");
                else if (std::abs(counts[key] -
                                  buckets.back().second) > 1e-9)
                    fail(where + ": _count != +Inf bucket");
                if (!has_sum[key])
                    fail(where + ": missing _sum series");
                (void)sums;
            }
        }
    }
};

} // namespace

double
PromParseResult::value(const std::string &name,
                       const std::map<std::string, std::string> &labels,
                       double fallback) const
{
    for (const auto &s : samples) {
        if (s.name != name)
            continue;
        bool match = true;
        for (const auto &[k, v] : labels) {
            auto it = s.labels.find(k);
            if (it == s.labels.end() || it->second != v) {
                match = false;
                break;
            }
        }
        if (match)
            return s.value;
    }
    return fallback;
}

std::size_t
PromParseResult::count(const std::string &name) const
{
    return static_cast<std::size_t>(
        std::count_if(samples.begin(), samples.end(),
                      [&](const PromSample &s) {
                          return s.name == name;
                      }));
}

PromParseResult
parsePrometheusText(const std::string &text)
{
    Checker checker(text);
    std::map<std::string, bool> family_has_samples;
    std::istringstream iss(text);
    std::string line;
    while (std::getline(iss, line)) {
        ++checker.lineNo;
        if (line.empty())
            continue;
        if (line[0] == '#')
            checker.parseComment(line, &family_has_samples);
        else
            checker.parseSample(line, &family_has_samples);
    }
    checker.checkHistograms();
    // A TYPE'd family with zero samples is a header-only family: the
    // exporter kept a family alive after its last child was removed.
    checker.lineNo = 0;
    for (const auto &[family, kind] : checker.result.types) {
        if (!family_has_samples[family])
            checker.fail("family '" + family +
                         "' declares a TYPE but has no samples");
    }
    checker.result.ok = checker.result.errors.empty();
    return checker.result;
}

} // namespace erec::tools
