#pragma once

/**
 * @file
 * Engine of the architecture gate (`erec_archlint`): extracts the
 * `#include` graph of the first-party tree, enforces the declared
 * module layer DAG, and detects include cycles.
 *
 * ElasticRec's modules form a strict layering (common at the bottom,
 * sim at the top — DESIGN.md §9); the serving decomposition only stays
 * refactorable while that DAG holds. The checks:
 *
 *  - layer-edge: every cross-module include must land inside the
 *    including module's *transitive closure* of allowed dependencies,
 *    as declared in tools/archlint/layers.conf (one line per module
 *    listing its direct dependencies; `*` = unconstrained, used for
 *    tools/tests/bench/examples).
 *  - include-cycle: the file-level include graph must be acyclic;
 *    strongly connected components are reported with a concrete
 *    cycle path (a.h -> b.h -> a.h).
 *  - undeclared-module: every scanned module must have a layers.conf
 *    entry, so new modules cannot dodge the gate.
 *
 * Include directives are extracted with a small scanner that blanks
 * comments and string literals first, so `#include` in a comment or a
 * string never creates an edge. Header self-containment is checked
 * separately by the CMake `archlint_headers` target (one generated TU
 * per src/elasticrec header).
 *
 * The engine works on an in-memory FileSet (repo-relative path ->
 * content) so tests can drive it without touching the filesystem; the
 * CLI (archlint_main.cc) walks the real tree. Malformed configs raise
 * erec::ConfigError, which the CLI maps to exit 2 (benchdiff
 * convention: 0 = clean, 1 = violations, 2 = usage/config error).
 */

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace erec::archlint {

/** One `#include` directive at a source location. */
struct IncludeDirective
{
    int line = 0;
    /** The path between the delimiters, verbatim. */
    std::string path;
    /** True for <...> (system headers — never graph edges). */
    bool angled = false;
};

/**
 * Scan one file's content for include directives. Comments, string
 * and character literals are blanked first, so commented-out includes
 * and includes inside literals are ignored.
 */
std::vector<IncludeDirective> extractIncludes(const std::string &content);

/** The declared layer DAG, parsed from layers.conf. */
struct LayerConfig
{
    /** Modules in declaration order. */
    std::vector<std::string> order;
    /** module -> directly allowed dependencies. */
    std::map<std::string, std::vector<std::string>> direct;
    /** Modules declared with `*` (may include anything). */
    std::set<std::string> wildcard;
    /** module -> transitive closure of allowed dependencies. */
    std::map<std::string, std::set<std::string>> closure;

    bool declares(const std::string &module) const;
    /** True when `from` may include `to` (closure or wildcard). */
    bool allows(const std::string &from, const std::string &to) const;
};

/**
 * Parse a layers.conf document. Grammar, one entry per line:
 *
 *     module: dep dep ...     # trailing comments allowed
 *     module: *               # unconstrained (tools/tests/...)
 *     module:                 # bottom layer, no dependencies
 *
 * Raises erec::ConfigError (with the line number) on a line without a
 * `:`, an invalid module name, a duplicate entry, a dependency on an
 * undeclared module, or a cycle among the declarations themselves.
 */
LayerConfig parseLayerConfig(const std::string &text);

/**
 * Module owning a repo-relative path: src/elasticrec/<m>/... -> <m>;
 * anything else maps to its first directory component ("tools",
 * "bench", "tests", "examples").
 */
std::string moduleOf(const std::string &path);

/** One architecture violation. */
struct Violation
{
    /** "layer-edge", "include-cycle" or "undeclared-module". */
    std::string kind;
    /** File the violation anchors to ("" for undeclared-module). */
    std::string file;
    int line = 0;
    std::string fromModule;
    std::string toModule;
    std::string message;
};

/** Repo-relative path -> file content. */
using FileSet = std::map<std::string, std::string>;

/** Full analysis result. */
struct Analysis
{
    std::size_t fileCount = 0;
    /** Resolved first-party include edges (deduplicated). */
    std::size_t edgeCount = 0;
    std::vector<Violation> violations;

    bool pass() const { return violations.empty(); }
};

/**
 * Run all checks over a file set. Quoted includes resolve against the
 * including file's directory, then `src/<path>`, then `<path>` from
 * the repo root; unresolved or angled includes never create edges.
 */
Analysis analyze(const FileSet &files, const LayerConfig &config);

/** "file:line: [kind] message" lines plus a PASS/FAIL summary. */
std::string renderText(const Analysis &analysis);

/** Deterministic JSON document (schema erec_archlint/v1). */
std::string renderJson(const Analysis &analysis);

} // namespace erec::archlint
