/**
 * @file
 * CLI of the architecture gate:
 *
 *     erec_archlint --root src [--root tools ...] \
 *         --config tools/archlint/layers.conf [--format text|json]
 *
 * Walks the given roots (relative to the current directory, which must
 * be the repo root so includes resolve), extracts the include graph,
 * and enforces the layer DAG plus acyclicity (tools/archlint/
 * arch_core.h). Exit codes follow the benchdiff convention: 0 = clean,
 * 1 = violations, 2 = usage / unreadable / malformed config. CI runs
 * `--format json` and uploads the document as an artifact.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/archlint/arch_core.h"

namespace fs = std::filesystem;

namespace {

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        std::cerr << "erec_archlint: cannot read " << path << "\n";
        std::exit(2);
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

bool
isCxxFile(const fs::path &path)
{
    const auto ext = path.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".h" || ext == ".hpp";
}

void
usage()
{
    std::cerr << "usage: erec_archlint --root <dir> [--root <dir>...]"
                 " --config <layers.conf> [--format text|json]\n";
    std::exit(2);
}

/** Repo-relative spelling of a scanned path ("./src/x" -> "src/x"). */
std::string
repoRelative(const fs::path &path)
{
    std::string out = path.generic_string();
    while (out.rfind("./", 0) == 0)
        out = out.substr(2);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    std::string config_path;
    std::string format = "text";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            roots.push_back(argv[++i]);
        } else if (arg == "--config" && i + 1 < argc) {
            config_path = argv[++i];
        } else if (arg == "--format" && i + 1 < argc) {
            format = argv[++i];
        } else {
            usage();
        }
    }
    if (roots.empty() || config_path.empty() ||
        (format != "text" && format != "json")) {
        usage();
    }

    erec::archlint::FileSet files;
    for (const auto &root : roots) {
        if (fs::is_regular_file(root)) {
            files[repoRelative(root)] = readFile(root);
            continue;
        }
        if (!fs::is_directory(root)) {
            std::cerr << "erec_archlint: no such file or directory: "
                      << root << "\n";
            return 2;
        }
        for (const auto &entry : fs::recursive_directory_iterator(root)) {
            if (entry.is_regular_file() && isCxxFile(entry.path()))
                files[repoRelative(entry.path())] = readFile(entry.path());
        }
    }

    try {
        const auto config =
            erec::archlint::parseLayerConfig(readFile(config_path));
        const auto analysis = erec::archlint::analyze(files, config);
        if (format == "json") {
            std::cout << erec::archlint::renderJson(analysis);
        } else {
            (analysis.pass() ? std::cout : std::cerr)
                << erec::archlint::renderText(analysis);
        }
        return analysis.pass() ? 0 : 1;
    } catch (const std::exception &e) {
        std::cerr << "erec_archlint: " << e.what() << "\n";
        return 2;
    }
}
