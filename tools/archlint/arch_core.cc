#include "tools/archlint/arch_core.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>

#include "elasticrec/common/error.h"

namespace erec::archlint {

namespace {

/**
 * Blank comments, string literals and char literals (raw strings
 * included), preserving newlines so directive line numbers survive.
 * Same discipline as the linter's stripper, specialised for the one
 * job of not seeing `#include` inside a comment or literal.
 */
std::string
stripCommentsAndStrings(const std::string &content)
{
    std::string out;
    out.reserve(content.size());
    enum class State { Code, LineComment, BlockComment, String, Char };
    State state = State::Code;

    auto emit = [&out](char c) { out.push_back(c == '\n' ? c : ' '); };

    std::size_t i = 0;
    const std::size_t n = content.size();
    while (i < n) {
        const char c = content[i];
        const char next = i + 1 < n ? content[i + 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                emit(c);
                emit(next);
                i += 2;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                emit(c);
                emit(next);
                i += 2;
            } else if (c == 'R' && next == '"' &&
                       (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                       content[i - 1])) &&
                                   content[i - 1] != '_'))) {
                std::size_t paren = content.find('(', i + 2);
                if (paren == std::string::npos) {
                    emit(c);
                    ++i;
                    break;
                }
                const std::string delim =
                    content.substr(i + 2, paren - (i + 2));
                const std::string closer = ")" + delim + "\"";
                std::size_t close = content.find(closer, paren + 1);
                const std::size_t end = close == std::string::npos
                                            ? n
                                            : close + closer.size();
                for (; i < end; ++i)
                    emit(content[i]);
            } else if (c == '"' || c == '\'') {
                state = c == '"' ? State::String : State::Char;
                emit(c);
                ++i;
            } else {
                out.push_back(c);
                ++i;
            }
            break;
          case State::LineComment:
            if (c == '\n')
                state = State::Code;
            emit(c);
            ++i;
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                emit(c);
                emit(next);
                i += 2;
            } else {
                emit(c);
                ++i;
            }
            break;
          case State::String:
          case State::Char: {
            const char quote = state == State::String ? '"' : '\'';
            if (c == '\\' && i + 1 < n) {
                emit(c);
                emit(next);
                i += 2;
            } else {
                if (c == quote)
                    state = State::Code;
                emit(c);
                ++i;
            }
            break;
          }
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= content.size()) {
        std::size_t nl = content.find('\n', start);
        if (nl == std::string::npos) {
            if (start < content.size())
                lines.push_back(content.substr(start));
            break;
        }
        lines.push_back(content.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

/** Lexically normalize a '/'-separated path ("a/./b/../c" -> "a/c"). */
std::string
normalizePath(const std::string &path)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= path.size()) {
        std::size_t slash = path.find('/', start);
        const std::size_t end =
            slash == std::string::npos ? path.size() : slash;
        const std::string part = path.substr(start, end - start);
        if (part == "..") {
            if (!parts.empty() && parts.back() != "..")
                parts.pop_back();
            else
                parts.push_back(part);
        } else if (!part.empty() && part != ".") {
            parts.push_back(part);
        }
        if (slash == std::string::npos)
            break;
        start = slash + 1;
    }
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += '/';
        out += parts[i];
    }
    return out;
}

std::string
dirName(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? "" : path.substr(0, slash);
}

bool
validModuleName(const std::string &name)
{
    if (name.empty())
        return false;
    return std::all_of(name.begin(), name.end(), [](unsigned char c) {
        return std::isalnum(c) || c == '_' || c == '-';
    });
}

/**
 * Resolve a quoted include against the scanned tree: relative to the
 * including file's directory first (bench_util.h style), then under
 * src/ (the "elasticrec/<module>/<header>.h" convention), then from
 * the repo root ("tools/lint/lint_core.h" style). Empty when the
 * include is not a scanned first-party file.
 */
std::string
resolveInclude(const FileSet &files, const std::string &includer,
               const std::string &include)
{
    const std::string dir = dirName(includer);
    const std::string candidates[] = {
        normalizePath(dir.empty() ? include : dir + "/" + include),
        normalizePath("src/" + include),
        normalizePath(include),
    };
    for (const auto &candidate : candidates) {
        if (files.count(candidate))
            return candidate;
    }
    return "";
}

/** One resolved first-party include edge. */
struct Edge
{
    std::string from;
    std::string to;
    int line = 0;
    /** The include path as written (for messages). */
    std::string spelled;
};

/**
 * Tarjan's strongly-connected-components algorithm (iterative, so
 * deep include chains cannot overflow the stack). Emits components
 * in a deterministic order given the sorted FileSet iteration.
 */
class Tarjan
{
  public:
    explicit Tarjan(const std::map<std::string, std::vector<std::string>>
                        &adjacency)
        : adjacency_(adjacency)
    {}

    std::vector<std::vector<std::string>>
    run()
    {
        for (const auto &[node, targets] : adjacency_) {
            (void)targets;
            if (!index_.count(node))
                strongConnect(node);
        }
        return components_;
    }

  private:
    struct Frame
    {
        std::string node;
        std::size_t nextTarget = 0;
    };

    void
    strongConnect(const std::string &root)
    {
        std::vector<Frame> callStack;
        callStack.push_back({root, 0});
        visit(root);
        while (!callStack.empty()) {
            Frame &frame = callStack.back();
            const auto &targets = adjacency_.at(frame.node);
            if (frame.nextTarget < targets.size()) {
                const std::string &next = targets[frame.nextTarget++];
                if (!adjacency_.count(next))
                    continue;
                if (!index_.count(next)) {
                    visit(next);
                    callStack.push_back({next, 0});
                } else if (onStack_.count(next)) {
                    lowLink_[frame.node] =
                        std::min(lowLink_[frame.node], index_[next]);
                }
                continue;
            }
            if (lowLink_[frame.node] == index_[frame.node]) {
                std::vector<std::string> component;
                while (true) {
                    const std::string popped = stack_.back();
                    stack_.pop_back();
                    onStack_.erase(popped);
                    component.push_back(popped);
                    if (popped == frame.node)
                        break;
                }
                components_.push_back(std::move(component));
            }
            const std::string finished = frame.node;
            callStack.pop_back();
            if (!callStack.empty()) {
                lowLink_[callStack.back().node] =
                    std::min(lowLink_[callStack.back().node],
                             lowLink_[finished]);
            }
        }
    }

    void
    visit(const std::string &node)
    {
        index_[node] = counter_;
        lowLink_[node] = counter_;
        ++counter_;
        stack_.push_back(node);
        onStack_.insert(node);
    }

    const std::map<std::string, std::vector<std::string>> &adjacency_;
    std::map<std::string, int> index_;
    std::map<std::string, int> lowLink_;
    std::vector<std::string> stack_;
    std::set<std::string> onStack_;
    std::vector<std::vector<std::string>> components_;
    int counter_ = 0;
};

/**
 * A concrete cycle path through `component`, as "a -> b -> a".
 * DFS restricted to the component from its lexicographically first
 * member back to itself; the component is an SCC, so one exists.
 */
std::string
cyclePath(const std::vector<std::string> &component,
          const std::map<std::string, std::vector<std::string>> &adjacency)
{
    const std::set<std::string> members(component.begin(),
                                        component.end());
    const std::string start =
        *std::min_element(component.begin(), component.end());

    std::vector<std::string> path = {start};
    std::set<std::string> visited;
    // Iterative DFS carrying the current path.
    struct Frame
    {
        std::string node;
        std::size_t nextTarget = 0;
    };
    std::vector<Frame> stack = {{start, 0}};
    while (!stack.empty()) {
        Frame &frame = stack.back();
        const auto it = adjacency.find(frame.node);
        const auto &targets =
            it == adjacency.end() ? std::vector<std::string>{} : it->second;
        bool advanced = false;
        while (frame.nextTarget < targets.size()) {
            const std::string &next = targets[frame.nextTarget++];
            if (next == start) {
                std::string out;
                for (const auto &node : path)
                    out += node + " -> ";
                return out + start;
            }
            if (members.count(next) && !visited.count(next)) {
                visited.insert(next);
                path.push_back(next);
                stack.push_back({next, 0});
                advanced = true;
                break;
            }
        }
        if (!advanced) {
            stack.pop_back();
            path.pop_back();
        }
    }
    // Unreachable for a genuine SCC; keep the report usable anyway.
    return start + " -> ... -> " + start;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream oss;
                oss << "\\u00" << std::hex << (c < 16 ? "0" : "")
                    << static_cast<int>(c);
                out += oss.str();
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

std::vector<IncludeDirective>
extractIncludes(const std::string &content)
{
    // The directive is recognised on the *stripped* text, so a
    // commented-out `#include` or one inside a string literal never
    // counts; the path itself is a string/bracket token the stripper
    // blanks, so it is read back from the raw line.
    static const std::regex kDirective(R"(^\s*#\s*include\b)");
    static const std::regex kPath(
        R"(^\s*#\s*include\s*([<"])([^">]+)[">])");
    std::vector<IncludeDirective> directives;
    const auto raw_lines = splitLines(content);
    const auto stripped_lines =
        splitLines(stripCommentsAndStrings(content));
    for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
        if (!std::regex_search(stripped_lines[i], kDirective))
            continue;
        std::smatch match;
        if (!std::regex_search(raw_lines[i], match, kPath))
            continue;
        directives.push_back({static_cast<int>(i + 1), match[2].str(),
                              match[1].str() == "<"});
    }
    return directives;
}

bool
LayerConfig::declares(const std::string &module) const
{
    return direct.count(module) > 0;
}

bool
LayerConfig::allows(const std::string &from, const std::string &to) const
{
    if (from == to || wildcard.count(from))
        return true;
    const auto it = closure.find(from);
    return it != closure.end() && it->second.count(to) > 0;
}

LayerConfig
parseLayerConfig(const std::string &text)
{
    LayerConfig config;
    const auto lines = splitLines(text);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::string line = lines[i];
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const bool blank =
            std::all_of(line.begin(), line.end(), [](unsigned char c) {
                return std::isspace(c);
            });
        if (blank)
            continue;
        const std::string where =
            "layers.conf line " + std::to_string(i + 1);

        const std::size_t colon = line.find(':');
        ERC_CHECK(colon != std::string::npos,
                  where << ": expected `module: dep dep ...`, got `"
                        << lines[i] << "`");
        std::istringstream name_in(line.substr(0, colon));
        std::string module, excess;
        name_in >> module;
        ERC_CHECK(validModuleName(module) && !(name_in >> excess),
                  where << ": invalid module name before `:`");
        ERC_CHECK(!config.declares(module),
                  where << ": duplicate entry for module `" << module
                        << "`");

        config.order.push_back(module);
        auto &deps = config.direct[module];
        std::istringstream deps_in(line.substr(colon + 1));
        std::string dep;
        while (deps_in >> dep) {
            if (dep == "*") {
                config.wildcard.insert(module);
                continue;
            }
            ERC_CHECK(validModuleName(dep),
                      where << ": invalid dependency name `" << dep
                            << "`");
            ERC_CHECK(dep != module,
                      where << ": module `" << module
                            << "` lists itself as a dependency");
            deps.push_back(dep);
        }
    }

    for (const auto &[module, deps] : config.direct) {
        for (const auto &dep : deps) {
            ERC_CHECK(config.declares(dep),
                      "layers.conf: module `"
                          << module << "` depends on `" << dep
                          << "`, which has no entry of its own");
        }
    }

    // Transitive closure by DFS; the declarations themselves must form
    // a DAG or "allowed" would mean everything for every cycle member.
    for (const auto &module : config.order) {
        std::set<std::string> seen;
        std::vector<std::string> stack = config.direct.at(module);
        while (!stack.empty()) {
            const std::string dep = stack.back();
            stack.pop_back();
            ERC_CHECK(dep != module,
                      "layers.conf: dependency cycle through module `"
                          << module << "`");
            if (!seen.insert(dep).second)
                continue;
            for (const auto &next : config.direct.at(dep))
                stack.push_back(next);
        }
        config.closure[module] = std::move(seen);
    }
    return config;
}

std::string
moduleOf(const std::string &path)
{
    const std::string clean = normalizePath(path);
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start < clean.size()) {
        std::size_t slash = clean.find('/', start);
        const std::size_t end =
            slash == std::string::npos ? clean.size() : slash;
        parts.push_back(clean.substr(start, end - start));
        if (slash == std::string::npos)
            break;
        start = slash + 1;
    }
    if (parts.size() >= 3 && parts[0] == "src" && parts[1] == "elasticrec")
        return parts[2];
    return parts.empty() ? "" : parts[0];
}

Analysis
analyze(const FileSet &files, const LayerConfig &config)
{
    Analysis analysis;
    analysis.fileCount = files.size();

    std::vector<Edge> edges;
    std::map<std::string, std::vector<std::string>> adjacency;
    for (const auto &[path, content] : files) {
        auto &targets = adjacency[path];
        std::set<std::string> seen;
        for (const auto &directive : extractIncludes(content)) {
            if (directive.angled)
                continue;
            const std::string target =
                resolveInclude(files, path, directive.path);
            if (target.empty() || !seen.insert(target).second)
                continue;
            edges.push_back(
                {path, target, directive.line, directive.path});
            targets.push_back(target);
        }
    }
    analysis.edgeCount = edges.size();

    // undeclared-module: one violation per module missing from the
    // config, so adding a module forces a layering decision.
    std::set<std::string> undeclared;
    for (const auto &[path, content] : files) {
        (void)content;
        const std::string module = moduleOf(path);
        if (!module.empty() && !config.declares(module))
            undeclared.insert(module);
    }
    for (const auto &module : undeclared) {
        analysis.violations.push_back(
            {"undeclared-module", "", 0, module, "",
             "module `" + module +
                 "` has no layers.conf entry; declare its allowed "
                 "dependencies (or `*`) before adding code to it"});
    }

    // layer-edge: cross-module includes outside the transitive
    // closure of the including module's declared dependencies.
    for (const auto &edge : edges) {
        const std::string from = moduleOf(edge.from);
        const std::string to = moduleOf(edge.to);
        if (from == to || !config.declares(from) || !config.declares(to))
            continue;
        if (config.allows(from, to))
            continue;
        analysis.violations.push_back(
            {"layer-edge", edge.from, edge.line, from, to,
             "`" + from + "` may not include `" + to + "` (" +
                 edge.spelled + "); allowed for `" + from + "`: " +
                 [&config, &from]() {
                     std::string allowed;
                     const auto &closure = config.closure.at(from);
                     for (const auto &dep : closure)
                         allowed += (allowed.empty() ? "" : ", ") + dep;
                     return allowed.empty() ? std::string("<nothing>")
                                            : allowed;
                 }() +
                 " — add the edge to layers.conf only if the DAG "
                 "stays acyclic, else forward-declare or move code "
                 "down a layer"});
    }

    // include-cycle: SCCs of the file-level graph with >1 member, plus
    // direct self-includes.
    for (const auto &component : Tarjan(adjacency).run()) {
        bool cyclic = component.size() > 1;
        if (!cyclic) {
            const auto &targets = adjacency.at(component.front());
            cyclic = std::find(targets.begin(), targets.end(),
                               component.front()) != targets.end();
        }
        if (!cyclic)
            continue;
        const std::string path = cyclePath(component, adjacency);
        const std::string anchor =
            *std::min_element(component.begin(), component.end());
        analysis.violations.push_back(
            {"include-cycle", anchor, 0, moduleOf(anchor), "",
             "include cycle: " + path +
                 " — break it with a forward declaration or by "
                 "splitting the shared types into a lower header"});
    }

    // Deterministic report order: by file, then line, then kind.
    std::stable_sort(analysis.violations.begin(),
                     analysis.violations.end(),
                     [](const Violation &a, const Violation &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.kind < b.kind;
                     });
    return analysis;
}

std::string
renderText(const Analysis &analysis)
{
    std::ostringstream oss;
    for (const auto &violation : analysis.violations) {
        if (violation.file.empty())
            oss << "layers.conf";
        else
            oss << violation.file << ":" << violation.line;
        oss << ": [" << violation.kind << "] " << violation.message
            << "\n";
    }
    oss << "erec_archlint: " << analysis.fileCount << " files, "
        << analysis.edgeCount << " include edges, "
        << analysis.violations.size() << " violation"
        << (analysis.violations.size() == 1 ? "" : "s") << " — "
        << (analysis.pass() ? "PASS" : "FAIL") << "\n";
    return oss.str();
}

std::string
renderJson(const Analysis &analysis)
{
    std::ostringstream oss;
    oss << "{\n";
    oss << "  \"schema\": \"erec_archlint/v1\",\n";
    oss << "  \"files\": " << analysis.fileCount << ",\n";
    oss << "  \"edges\": " << analysis.edgeCount << ",\n";
    oss << "  \"pass\": " << (analysis.pass() ? "true" : "false")
        << ",\n";
    oss << "  \"violations\": [";
    for (std::size_t i = 0; i < analysis.violations.size(); ++i) {
        const Violation &v = analysis.violations[i];
        oss << (i == 0 ? "\n" : ",\n");
        oss << "    {\n";
        oss << "      \"kind\": \"" << jsonEscape(v.kind) << "\",\n";
        oss << "      \"file\": \"" << jsonEscape(v.file) << "\",\n";
        oss << "      \"line\": " << v.line << ",\n";
        oss << "      \"from\": \"" << jsonEscape(v.fromModule)
            << "\",\n";
        oss << "      \"to\": \"" << jsonEscape(v.toModule) << "\",\n";
        oss << "      \"message\": \"" << jsonEscape(v.message)
            << "\"\n";
        oss << "    }";
    }
    oss << (analysis.violations.empty() ? "]\n" : "\n  ]\n");
    oss << "}\n";
    return oss.str();
}

} // namespace erec::archlint
