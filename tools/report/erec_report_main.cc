/**
 * @file
 * erec_report: turn a `--metrics-out` dump into a human-readable run
 * report.
 *
 *   erec_report DIR [--stem STEM] [--fail-on-alert NAME[,NAME...]]
 *
 * For every `<stem>.prom` in DIR (or just `--stem`), prints a run
 * summary from the Prometheus export, a per-stage latency attribution
 * table and a critical-path breakdown from `<stem>_traces.jsonl`
 * (when tracing was on), and the SLO verdict plus alert timeline from
 * `<stem>_alerts.jsonl`.
 *
 * `--fail-on-alert` names alert rules that must not have fired in any
 * reported run; the exit status is 1 when one did (or when a telemetry
 * file is malformed), which is how CI gates the fig19 smoke run on
 * "steady traffic loses no queries".
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "elasticrec/common/table_printer.h"
#include "elasticrec/obs/export.h"
#include "elasticrec/obs/report.h"
#include "tools/promcheck/prom_parser.h"

namespace {

namespace fs = std::filesystem;
using erec::TablePrinter;

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/**
 * The frontend deployment aggregates every query's end-to-end latency;
 * sparse shards log their completions with latency 0. The deployment
 * with the largest latency sum is therefore the frontend.
 */
std::string
frontendDeployment(const erec::tools::PromParseResult &prom)
{
    std::string best;
    double best_sum = -1.0;
    for (const auto &s : prom.samples) {
        if (s.name != "erec_latency_ms_sum")
            continue;
        const auto dep = s.labels.find("deployment");
        if (dep == s.labels.end())
            continue;
        if (s.value > best_sum) {
            best_sum = s.value;
            best = dep->second;
        }
    }
    return best;
}

/** Report one run stem; returns false on malformed telemetry. */
bool
reportStem(const fs::path &dir, const std::string &stem,
           std::vector<erec::obs::AlertEvent> *all_events)
{
    std::cout << "\n=== run " << stem << " ===\n";
    const auto prom =
        erec::tools::parsePrometheusText(readFile(dir / (stem + ".prom")));
    if (!prom.ok) {
        for (const auto &e : prom.errors)
            std::cerr << stem << ".prom: " << e << "\n";
        return false;
    }

    const std::string frontend = frontendDeployment(prom);
    const std::map<std::string, std::string> fe_labels = {
        {"deployment", frontend}};
    const double arrivals = prom.value("erec_arrivals_total");
    const double completed =
        prom.value("erec_latency_ms_count", fe_labels);
    const double violations =
        prom.value("erec_sla_violations_total", fe_labels);
    const double lost = prom.value("erec_lost_queries");
    std::cout << "frontend deployment: "
              << (frontend.empty() ? "?" : frontend) << "\n"
              << "arrivals " << TablePrinter::num(arrivals, 0)
              << ", completed " << TablePrinter::num(completed, 0)
              << ", SLA violations " << TablePrinter::num(violations, 0)
              << " ("
              << TablePrinter::percent(
                     completed > 0 ? violations / completed : 0.0)
              << "), lost queries " << TablePrinter::num(lost, 0)
              << "\n\n";

    const fs::path traces_path = dir / (stem + "_traces.jsonl");
    if (fs::exists(traces_path)) {
        try {
            const auto traces =
                erec::obs::readTraceJsonLines(readFile(traces_path));
            erec::obs::writeStageTable(
                std::cout, erec::obs::attributeStages(traces));
            std::cout << "\n";
            erec::obs::writeCriticalPathTable(
                std::cout, erec::obs::analyzeCriticalPaths(traces));
        } catch (const std::exception &e) {
            std::cerr << traces_path.filename().string() << ": "
                      << e.what() << "\n";
            return false;
        }
    } else {
        std::cout << "Per-stage latency attribution: no trace file "
                     "(tracing was off)\n";
    }
    std::cout << "\n";

    const fs::path alerts_path = dir / (stem + "_alerts.jsonl");
    std::vector<erec::obs::AlertEvent> events;
    if (fs::exists(alerts_path)) {
        try {
            events = erec::obs::readAlertJsonLines(readFile(alerts_path));
        } catch (const std::exception &e) {
            std::cerr << alerts_path.filename().string() << ": "
                      << e.what() << "\n";
            return false;
        }
    }
    erec::obs::writeSloVerdicts(std::cout,
                                erec::obs::summarizeAlerts(events));
    erec::obs::writeAlertTimeline(std::cout, events);
    all_events->insert(all_events->end(), events.begin(), events.end());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir_arg;
    std::string stem_filter;
    std::vector<std::string> fail_on;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--stem" && i + 1 < argc) {
            stem_filter = argv[++i];
        } else if (arg == "--fail-on-alert" && i + 1 < argc) {
            std::istringstream names(argv[++i]);
            std::string name;
            while (std::getline(names, name, ','))
                if (!name.empty())
                    fail_on.push_back(name);
        } else if (dir_arg.empty() && !arg.empty() && arg[0] != '-') {
            dir_arg = arg;
        } else {
            std::cerr << "unknown argument '" << arg << "'\n";
            return 2;
        }
    }
    if (dir_arg.empty()) {
        std::cerr
            << "usage: erec_report DIR [--stem STEM] "
               "[--fail-on-alert NAME[,NAME...]]\n"
            << "  renders the telemetry dumped by --metrics-out DIR\n";
        return 2;
    }
    const fs::path dir(dir_arg);
    if (!fs::is_directory(dir)) {
        std::cerr << dir_arg << ": not a directory\n";
        return 2;
    }

    std::vector<std::string> stems;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".prom")
            stems.push_back(entry.path().stem().string());
    }
    std::sort(stems.begin(), stems.end());
    if (!stem_filter.empty()) {
        if (std::find(stems.begin(), stems.end(), stem_filter) ==
            stems.end()) {
            std::cerr << "no " << stem_filter << ".prom in " << dir_arg
                      << "\n";
            return 2;
        }
        stems = {stem_filter};
    }
    if (stems.empty()) {
        std::cerr << dir_arg << ": no .prom files\n";
        return 2;
    }

    bool ok = true;
    std::vector<erec::obs::AlertEvent> all_events;
    for (const auto &stem : stems)
        ok = reportStem(dir, stem, &all_events) && ok;

    for (const auto &name : fail_on) {
        std::uint64_t fired = 0;
        for (const auto &e : all_events)
            if (e.firing && e.alert == name)
                ++fired;
        if (fired > 0) {
            std::cerr << "\nFAIL: alert '" << name << "' fired " << fired
                      << " time" << (fired == 1 ? "" : "s")
                      << " (--fail-on-alert)\n";
            ok = false;
        } else {
            std::cout << "\ngate: alert '" << name << "' never fired\n";
        }
    }
    return ok ? 0 : 1;
}
