/**
 * @file
 * CLI of the static concurrency-discipline gate:
 *
 *     erec_conclint --root src [--root <dir>...] [--format text|json]
 *
 * Walks the given roots (relative to the current directory, which
 * should be the repo root so paths in reports are repo-relative),
 * builds the lock-acquisition graph, and reports lock-order inversion
 * cycles, blocking-under-lock sites and annotation-coverage gaps
 * (tools/conclint/concl_core.h). Exit codes follow the benchdiff
 * convention: 0 = clean, 1 = violations, 2 = usage error. CI runs
 * `--format json` and uploads the document as the concurrency-report
 * artifact.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/conclint/concl_core.h"

namespace fs = std::filesystem;

namespace {

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        std::cerr << "erec_conclint: cannot read " << path << "\n";
        std::exit(2);
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

bool
isCxxFile(const fs::path &path)
{
    const auto ext = path.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".h" || ext == ".hpp";
}

void
usage()
{
    std::cerr << "usage: erec_conclint --root <dir> [--root <dir>...]"
                 " [--format text|json]\n";
    std::exit(2);
}

/** Repo-relative spelling of a scanned path ("./src/x" -> "src/x"). */
std::string
repoRelative(const fs::path &path)
{
    std::string out = path.generic_string();
    while (out.rfind("./", 0) == 0)
        out = out.substr(2);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    std::string format = "text";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            roots.push_back(argv[++i]);
        } else if (arg == "--format" && i + 1 < argc) {
            format = argv[++i];
        } else {
            usage();
        }
    }
    if (roots.empty() || (format != "text" && format != "json"))
        usage();

    erec::conclint::FileSet files;
    for (const auto &root : roots) {
        if (fs::is_regular_file(root)) {
            files[repoRelative(root)] = readFile(root);
            continue;
        }
        if (!fs::is_directory(root)) {
            std::cerr << "erec_conclint: no such file or directory: "
                      << root << "\n";
            return 2;
        }
        for (const auto &entry : fs::recursive_directory_iterator(root)) {
            if (entry.is_regular_file() && isCxxFile(entry.path()))
                files[repoRelative(entry.path())] = readFile(entry.path());
        }
    }

    const auto analysis = erec::conclint::analyze(files);
    if (format == "json") {
        std::cout << erec::conclint::renderJson(analysis);
    } else {
        (analysis.pass() ? std::cout : std::cerr)
            << erec::conclint::renderText(analysis);
    }
    return analysis.pass() ? 0 : 1;
}
