#pragma once

/**
 * @file
 * Engine of the static concurrency-discipline gate (`erec_conclint`):
 * a dependency-free pass in the archlint/hotpath family that keeps the
 * tree's locking provably disciplined before the migration/chaos work
 * starts stacking drain/kill protocols on top of it (DESIGN.md §14).
 *
 * The pass reuses the hotpath extractor's stripped-source function
 * machinery (tools/hotpath/hotpath_core.h) and runs three checks:
 *
 *  - lock-order-inversion: every `std::lock_guard` / `unique_lock` /
 *    `scoped_lock` site is an acquisition of a *canonical mutex* — the
 *    declared mutex member/global the lock argument resolves to,
 *    keyed `<dir>/<file-stem>::<name>` so a header's member and its
 *    sibling .cc's lock sites agree. Holding A while acquiring B
 *    (directly in the same body, or through a call whose transitive
 *    summary acquires B) adds the edge A -> B to the lock-acquisition
 *    graph; a cycle in that graph is a potential deadlock. Cycles are
 *    found with an iterative Tarjan SCC (archlint's cycle printer) and
 *    each edge of a cyclic SCC is reported with the concrete call path
 *    that acquires the pair in that order, so a two-lock inversion
 *    prints both acquisition paths.
 *  - blocking-under-lock: inside a held-lock scope, flag predicate-less
 *    condition-variable waits (`.wait(lk)` with one argument,
 *    `.wait_for`/`.wait_until` with two — spurious-wakeup bait),
 *    `sleep_for`/`sleep_until`, blocking I/O (the hotpath rule's
 *    pattern family), `.get()`/`.wait()` on a plain identifier (a
 *    future join), and any call to a function whose transitive summary
 *    blocks (so `BatchQueue::push` reachable under a lock is flagged
 *    at the call site). Files under src/elasticrec/runtime/ are exempt
 *    from *reporting* only — the blessed queues must block under their
 *    own locks — but their summaries still propagate to callers.
 *  - annotation coverage: every mutex member declared in a library
 *    header must carry at least one ERC_GUARDED_BY(member) /
 *    ERC_PT_GUARDED_BY(member) field in the same file
 *    (unannotated-mutex, the closed-world version of the erec_lint
 *    opt-in rule: no runtime/ exemption here), and every function that
 *    touches a guarded field must either acquire the guarding mutex in
 *    its body or carry a capability annotation (ERC_REQUIRES /
 *    ERC_ACQUIRE / ERC_RELEASE / ERC_NO_THREAD_SAFETY_ANALYSIS) on its
 *    definition (unguarded-access). Constructors/destructors — any
 *    function whose base name matches a class/struct declared in the
 *    same file group — are exempt: object construction is
 *    single-threaded by convention, exactly as clang -Wthread-safety
 *    treats it.
 *
 * Deliberate over-approximations, mirroring the hotpath pass: callees
 * resolve by base name, macros are not expanded, and lock scopes are
 * tracked at line/brace granularity (a lock declared on a line is held
 * until its enclosing brace block closes). `std::try_to_lock`,
 * `std::defer_lock` and `try_lock()` sites are NOT acquisitions (they
 * cannot deadlock / do not lock), and the arguments of one
 * `std::scoped_lock` never order against each other (std::lock's
 * deadlock-avoidance algorithm makes multi-acquire safe by
 * definition). Lambda bodies attribute to their enclosing function.
 *
 * Waivers use ERC_CONCLINT_ALLOW("reason")
 * (common/thread_annotations.h): on a line (or the line directly
 * above) it suppresses findings reported at that line; directly before
 * a function definition it exempts the whole function — its body is
 * not scanned and it contributes no summaries. The dynamic
 * counterpart is the TSan CI stress job (scripts/check.sh
 * tsan-stress), which actually interleaves the concurrency test
 * subset; the static gate exists so a lock-order inversion fails every
 * run, not just the unlucky ones.
 *
 * The engine works on an in-memory FileSet so tests drive it without
 * touching the filesystem; the CLI (conclint_main.cc) walks the real
 * tree. Exit codes follow the house convention: 0 = clean,
 * 1 = violations, 2 = usage error.
 */

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace erec::conclint {

/** Repo-relative path -> file content. */
using FileSet = std::map<std::string, std::string>;

/** One concurrency-discipline violation at a source location. */
struct Violation
{
    /** "lock-order-inversion", "blocking-under-lock",
     *  "unannotated-mutex" or "unguarded-access". */
    std::string kind;
    std::string file;
    int line = 0;
    /** Base name of the containing function ("" for file-scope). */
    std::string function;
    /** Canonical mutex key the finding is about (the edge's target
     *  for inversions, the held mutex for blocking, the member for
     *  coverage findings). */
    std::string mutex;
    /** Concrete acquisition/call path, outermost frame first. Each
     *  step reads "Function (file:line)". */
    std::vector<std::string> path;
    /** Human-readable description (for inversions: the cycle). */
    std::string message;
};

/** One lock-acquisition-graph edge (exposed for tests). */
struct LockEdge
{
    std::string from; //!< Held mutex key.
    std::string to;   //!< Mutex key acquired while `from` is held.
    /** Witness path: "fn (file:line)" steps from the acquisition of
     *  `from` to the acquisition of `to`. */
    std::vector<std::string> path;
};

/** Full analysis result. */
struct Analysis
{
    std::size_t fileCount = 0;
    std::size_t functionCount = 0;
    /** Distinct canonical mutexes with at least one declaration. */
    std::size_t mutexCount = 0;
    /** Scoped-lock acquisition sites recognized. */
    std::size_t lockSiteCount = 0;
    /** Distinct edges in the lock-acquisition graph. */
    std::vector<LockEdge> edges;
    std::vector<Violation> violations;

    bool pass() const { return violations.empty(); }
};

/** Run the full pass over a file set. */
Analysis analyze(const FileSet &files);

/** "file:line: [kind] message" lines plus a PASS/FAIL summary; every
 *  inversion edge prints its full acquisition path. */
std::string renderText(const Analysis &analysis);

/** Deterministic JSON document (schema erec_conclint/v1). */
std::string renderJson(const Analysis &analysis);

} // namespace erec::conclint
