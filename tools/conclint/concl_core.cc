#include "tools/conclint/concl_core.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

#include "tools/hotpath/hotpath_core.h"
#include "tools/lint/lint_core.h"

namespace erec::conclint {

namespace {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream iss(content);
    while (std::getline(iss, line))
        lines.push_back(line);
    return lines;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Files whose *reports* are exempt (the blessed blocking queues);
 *  their lock edges and blocking summaries still propagate. */
bool
isRuntimeFile(const std::string &path)
{
    return path.find("src/elasticrec/runtime/") != std::string::npos ||
           path.rfind("elasticrec/runtime/", 0) == 0 ||
           path.rfind("runtime/", 0) == 0;
}

/** True for headers that belong to the library tree (under src/). */
bool
isLibraryHeader(const std::string &path)
{
    const bool header =
        path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
    return header && (path.rfind("src/", 0) == 0 ||
                      path.find("/src/") != std::string::npos);
}

/** Canonical group of a path: extension dropped, `src/elasticrec/`
 *  (or `src/`) prefix dropped, so `runtime/thread_pool.h` and its
 *  sibling `.cc` share the key `runtime/thread_pool`. */
std::string
groupOf(const std::string &path)
{
    std::string stem = path;
    const std::size_t dot = stem.find_last_of('.');
    const std::size_t slash = stem.find_last_of('/');
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash))
        stem = stem.substr(0, dot);
    for (const char *prefix : {"src/elasticrec/", "src/"}) {
        const std::string p(prefix);
        if (stem.rfind(p, 0) == 0)
            return stem.substr(p.size());
        const std::size_t mid = stem.find("/" + p);
        if (mid != std::string::npos)
            return stem.substr(mid + 1 + p.size());
    }
    return stem;
}

/** Last identifier of a member expression ("t.mu" -> "mu"). Returns
 *  "" when the expression does not end in a plain identifier. */
std::string
lastIdentOf(const std::string &expr)
{
    const std::string e = trim(expr);
    if (e.empty() || !isIdentChar(e.back()))
        return "";
    std::size_t k = e.size();
    while (k > 0 && isIdentChar(e[k - 1]))
        --k;
    return e.substr(k);
}

/** Split an argument list on top-level commas. */
std::vector<std::string>
splitArgs(const std::string &args)
{
    std::vector<std::string> out;
    int depth = 0;
    std::string cur;
    for (const char c : args) {
        if (c == '(' || c == '<' || c == '[' || c == '{')
            ++depth;
        else if (c == ')' || c == '>' || c == ']' || c == '}')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
            continue;
        }
        cur.push_back(c);
    }
    if (!trim(cur).empty())
        out.push_back(trim(cur));
    return out;
}

/** One declared mutex (member or file-scope). */
struct MutexDecl
{
    std::string key; //!< group::name
    std::string name;
    std::string file;
    int line = 0;
    bool inLibraryHeader = false;
    /** True when the declaration line sits inside a function body
     *  (a local mutex, not a member). */
    bool local = false;
};

/** A function's interprocedural summary. */
struct Summary
{
    /** Mutex key -> acquisition path ("fn (file:line)" steps). */
    std::map<std::string, std::vector<std::string>> acquires;
    /** Non-empty when a call may block: path to the blocking site. */
    std::vector<std::string> blocksPath;
    std::string blocksKind; //!< Violation kind text for the site.
};

struct Node
{
    hotpath::FunctionDef def;
    std::size_t fileIndex = 0;
    std::string group;
    bool exempt = false; //!< Function-level ERC_CONCLINT_ALLOW.
    std::set<int> allowLines;
    /** Callee node index -> first call line. */
    std::map<std::size_t, int> callees;
    Summary summary;
};

struct ParsedFile
{
    std::string path;
    std::string group;
    std::vector<std::string> rawLines;
    std::vector<std::string> strippedLines;
};

/** A lock held at some point of a body scan. */
struct Held
{
    std::string key;
    int depth = 0; //!< Brace depth at acquisition; released below it.
    int line = 0;  //!< Acquisition line.
};

const std::regex &
lockDeclRe()
{
    // std::lock_guard<M> name(args); / std::scoped_lock name(args);
    // The template argument list and the variable name are optional
    // captures so scoped_lock's CTAD spelling parses too.
    static const std::regex re(
        R"re(\b(lock_guard|unique_lock|shared_lock|scoped_lock)\s*(?:<[^<>;]*(?:<[^<>;]*>)?[^<>;]*>)?\s+([A-Za-z_][A-Za-z0-9_]*)\s*[({]([^;]*?)[)}]\s*;)re");
    return re;
}

const std::regex &
blockingIoRe()
{
    static const std::regex re(
        R"(\bstd\s*::\s*(cout|cerr|clog|cin)\b|\b(printf|fprintf|fputs|fwrite|fread|fopen|fflush)\s*\(|\bifstream\b|\bofstream\b|\bfstream\b|\bgetline\s*\()");
    return re;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream oss;
                oss << "\\u00" << std::hex << (c < 16 ? "0" : "")
                    << static_cast<int>(c);
                out += oss.str();
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

/** "Display (file:line)" step for witness paths. */
std::string
step(const Node &node, const std::string &file, int line)
{
    std::ostringstream oss;
    oss << node.def.display << " (" << file << ":" << line << ")";
    return oss.str();
}

} // namespace

Analysis
analyze(const FileSet &files)
{
    Analysis analysis;
    analysis.fileCount = files.size();

    // ---- Parse every file through the shared hotpath pipeline. ----
    std::vector<ParsedFile> parsed;
    std::vector<Node> nodes;
    std::map<std::string, std::vector<std::size_t>> byName;
    std::map<std::string, MutexDecl> mutexes; // key -> decl
    /** name -> keys, for cross-group fallback resolution. */
    std::map<std::string, std::set<std::string>> mutexKeysByName;
    /** group -> (guarded field name -> guarding mutex key). */
    std::map<std::string, std::map<std::string, std::string>> guarded;
    /** group -> class/struct names (ctor/dtor exemption). */
    std::map<std::string, std::set<std::string>> classNames;

    static const std::regex kAllow(R"(ERC_CONCLINT_ALLOW\(\s*\")");
    static const std::regex kMutexDecl(
        R"(\bstd\s*::\s*(?:shared_|recursive_|timed_)?mutex\s+([A-Za-z_][A-Za-z0-9_]*)\s*;)");
    static const std::regex kGuardedField(
        R"(([A-Za-z_][A-Za-z0-9_]*)\s+ERC_(?:PT_)?GUARDED_BY\s*\(\s*([A-Za-z_][A-Za-z0-9_]*)\s*\))");
    static const std::regex kClass(
        R"(\b(?:class|struct)\s+([A-Za-z_][A-Za-z0-9_]*))");

    for (const auto &[path, content] : files) {
        ParsedFile pf;
        pf.path = path;
        pf.group = groupOf(path);
        pf.rawLines = splitLines(content);
        const std::string code = hotpath::blankPreprocessorLines(
            lint::stripCommentsAndStrings(content));
        pf.strippedLines = splitLines(code);

        const std::size_t first_node = nodes.size();
        for (auto &def : hotpath::extractFunctions(path, content)) {
            Node node;
            node.def = def;
            node.fileIndex = parsed.size();
            node.group = pf.group;
            byName[def.name].push_back(nodes.size());
            nodes.push_back(std::move(node));
        }

        // ALLOW markers come from the RAW lines so trailing comments
        // work (the stripper blanks them in the stripped text).
        std::vector<int> allow_lines;
        for (std::size_t li = 0; li < pf.rawLines.size(); ++li)
            if (std::regex_search(pf.rawLines[li], kAllow))
                allow_lines.push_back(static_cast<int>(li) + 1);
        for (const int al : allow_lines) {
            bool inside = false;
            for (std::size_t ni = first_node; ni < nodes.size(); ++ni) {
                Node &node = nodes[ni];
                if (al >= node.def.bodyBeginLine &&
                    al <= node.def.bodyEndLine) {
                    node.allowLines.insert(al);
                    node.allowLines.insert(al + 1);
                    inside = true;
                    break;
                }
            }
            if (inside)
                continue;
            for (std::size_t ni = first_node; ni < nodes.size(); ++ni) {
                if (nodes[ni].def.bodyBeginLine > al) {
                    nodes[ni].exempt = true;
                    break;
                }
            }
        }

        // File-level ALLOW lines also waive declaration-site findings
        // (unannotated-mutex) on their own / the following line.
        std::set<int> file_allow;
        for (const int al : allow_lines) {
            file_allow.insert(al);
            file_allow.insert(al + 1);
        }

        // Mutex declarations.
        for (std::size_t li = 0; li < pf.strippedLines.size(); ++li) {
            std::smatch m;
            std::string rest = pf.strippedLines[li];
            if (!std::regex_search(rest, m, kMutexDecl))
                continue;
            const int line_no = static_cast<int>(li) + 1;
            MutexDecl decl;
            decl.name = m[1].str();
            decl.key = pf.group + "::" + decl.name;
            decl.file = path;
            decl.line = line_no;
            decl.inLibraryHeader = isLibraryHeader(path);
            for (std::size_t ni = first_node; ni < nodes.size(); ++ni) {
                if (line_no >= nodes[ni].def.bodyBeginLine &&
                    line_no <= nodes[ni].def.bodyEndLine)
                    decl.local = true;
            }
            if (decl.inLibraryHeader && !decl.local &&
                file_allow.count(line_no) != 0) {
                // ERC_CONCLINT_ALLOW on the declaration waives the
                // coverage requirement for this member.
                decl.inLibraryHeader = false;
            }
            mutexKeysByName[decl.name].insert(decl.key);
            mutexes.emplace(decl.key, std::move(decl));
        }

        // Guarded fields: field -> guarding mutex key (same group).
        const std::string whole = code;
        for (auto it = std::sregex_iterator(whole.begin(), whole.end(),
                                            kGuardedField);
             it != std::sregex_iterator(); ++it) {
            const std::string field = (*it)[1].str();
            const std::string mux = (*it)[2].str();
            guarded[pf.group][field] = pf.group + "::" + mux;
        }

        // Class/struct names (constructor/destructor exemption).
        for (auto it =
                 std::sregex_iterator(whole.begin(), whole.end(), kClass);
             it != std::sregex_iterator(); ++it)
            classNames[pf.group].insert((*it)[1].str());

        parsed.push_back(std::move(pf));
    }
    analysis.functionCount = nodes.size();
    analysis.mutexCount = mutexes.size();

    // ---- Resolve a lock argument to a canonical mutex key. ----
    auto resolveMutex = [&](const std::string &expr,
                            const std::string &group) -> std::string {
        const std::string name = lastIdentOf(expr);
        if (name.empty())
            return "";
        const std::string local_key = group + "::" + name;
        if (mutexes.count(local_key) != 0)
            return local_key;
        const auto it = mutexKeysByName.find(name);
        if (it != mutexKeysByName.end() && it->second.size() == 1)
            return *it->second.begin();
        // Unknown declaration site: key it to this group so repeated
        // references still collapse to one graph node.
        return local_key;
    };

    // ---- Call graph (base-name matched, like the hotpath pass). ----
    static const std::regex kCall(R"(([A-Za-z_][A-Za-z0-9_]*)\s*\()");
    static const std::set<std::string> kCallKeywords{
        "if",     "for",    "while",    "switch", "catch",  "return",
        "sizeof", "new",    "delete",   "throw",  "assert", "decltype",
        "static_assert",    "noexcept", "alignof", "alignas",
    };
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
        Node &node = nodes[ni];
        if (node.exempt)
            continue;
        const ParsedFile &pf = parsed[node.fileIndex];
        for (int li = node.def.bodyBeginLine;
             li <= node.def.bodyEndLine &&
             li <= static_cast<int>(pf.strippedLines.size());
             ++li) {
            const std::string &line =
                pf.strippedLines[static_cast<std::size_t>(li - 1)];
            for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                                kCall);
                 it != std::sregex_iterator(); ++it) {
                const std::string callee = (*it)[1].str();
                if (kCallKeywords.count(callee) != 0)
                    continue;
                const auto found = byName.find(callee);
                if (found == byName.end())
                    continue;
                for (const std::size_t target : found->second) {
                    if (target == ni || nodes[target].exempt)
                        continue;
                    node.callees.emplace(target, li);
                }
            }
        }
    }

    // ---- Per-body lexical scan: lock sites + direct blocking. ----
    struct Acquisition
    {
        std::string key;
        int line = 0;
    };
    std::vector<std::vector<Acquisition>> acquisitions(nodes.size());

    struct EdgeInfo
    {
        std::vector<std::string> path;
    };
    std::map<std::pair<std::string, std::string>, EdgeInfo> edges;

    static const std::regex kCvWait(
        R"((\.|->)\s*(wait|wait_for|wait_until)\s*\(([^;()]*(?:\([^()]*\))?[^;()]*)\))");
    static const std::regex kSleep(
        R"(\bsleep_for\s*\(|\bsleep_until\s*\()");
    static const std::regex kFutureJoin(
        R"(\b([A-Za-z_][A-Za-z0-9_]*)\s*(\.|->)\s*(get|wait)\s*\(\s*\))");
    static const std::regex kVarLock(
        R"(\b([A-Za-z_][A-Za-z0-9_]*)\s*(\.|->)\s*(lock|unlock)\s*\(\s*\))");

    // First pass collects every acquisition (for summaries and for the
    // unguarded-access check); the blocking/edge reports need held
    // context and run in the second pass below.
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
        Node &node = nodes[ni];
        if (node.exempt)
            continue;
        const ParsedFile &pf = parsed[node.fileIndex];
        for (int li = node.def.bodyBeginLine;
             li <= node.def.bodyEndLine &&
             li <= static_cast<int>(pf.strippedLines.size());
             ++li) {
            const std::string &line =
                pf.strippedLines[static_cast<std::size_t>(li - 1)];
            for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                                lockDeclRe());
                 it != std::sregex_iterator(); ++it) {
                const std::string holder = (*it)[1].str();
                const std::string args = (*it)[3].str();
                if (args.find("try_to_lock") != std::string::npos ||
                    args.find("defer_lock") != std::string::npos)
                    continue; // Non-blocking / non-acquiring.
                for (const std::string &arg : splitArgs(args)) {
                    if (arg.find("adopt_lock") != std::string::npos)
                        continue;
                    const std::string key =
                        resolveMutex(arg, node.group);
                    if (key.empty())
                        continue;
                    ++analysis.lockSiteCount;
                    acquisitions[ni].push_back({key, li});
                    if (holder != "scoped_lock")
                        break; // Guards take exactly one mutex.
                }
            }
        }
    }

    // ---- Summaries: transitive acquires + may-block, to fixpoint. ----
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
        Node &node = nodes[ni];
        const ParsedFile &pf = parsed[node.fileIndex];
        for (const Acquisition &acq : acquisitions[ni])
            node.summary.acquires.emplace(
                acq.key,
                std::vector<std::string>{step(node, pf.path, acq.line)});
        for (int li = node.def.bodyBeginLine;
             li <= node.def.bodyEndLine &&
             li <= static_cast<int>(pf.strippedLines.size());
             ++li) {
            const std::string &line =
                pf.strippedLines[static_cast<std::size_t>(li - 1)];
            std::string what;
            std::smatch m;
            if (std::regex_search(line, kSleep))
                what = "sleeps";
            else if (std::regex_search(line, blockingIoRe()))
                what = "performs blocking I/O";
            else if (std::regex_search(line, m, kCvWait))
                what = "waits on a condition variable";
            if (what.empty() || node.exempt)
                continue;
            if (node.summary.blocksPath.empty()) {
                node.summary.blocksPath = {step(node, pf.path, li)};
                node.summary.blocksKind = what;
            }
        }
    }
    // Propagate through the call graph until stable (graph is small).
    for (bool changed = true; changed;) {
        changed = false;
        for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
            Node &node = nodes[ni];
            if (node.exempt)
                continue;
            const ParsedFile &pf = parsed[node.fileIndex];
            for (const auto &[callee, call_line] : node.callees) {
                const Node &target = nodes[callee];
                for (const auto &[key, path] : target.summary.acquires) {
                    if (node.summary.acquires.count(key) != 0)
                        continue;
                    std::vector<std::string> chain{
                        step(node, pf.path, call_line)};
                    chain.insert(chain.end(), path.begin(), path.end());
                    node.summary.acquires.emplace(key, std::move(chain));
                    changed = true;
                }
                if (node.summary.blocksPath.empty() &&
                    !target.summary.blocksPath.empty()) {
                    node.summary.blocksPath = {
                        step(node, pf.path, call_line)};
                    node.summary.blocksPath.insert(
                        node.summary.blocksPath.end(),
                        target.summary.blocksPath.begin(),
                        target.summary.blocksPath.end());
                    node.summary.blocksKind = target.summary.blocksKind;
                    changed = true;
                }
            }
        }
    }

    // ---- Second pass: held-lock scopes, edges, blocking reports. ----
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
        Node &node = nodes[ni];
        if (node.exempt)
            continue;
        const ParsedFile &pf = parsed[node.fileIndex];
        const bool exempt_file = isRuntimeFile(pf.path);

        std::vector<Held> held;
        /** unique_lock variable name -> (mutex key, decl depth). */
        std::map<std::string, std::pair<std::string, int>> lockVars;
        int depth = 0;

        auto addEdge = [&](const std::string &from, int from_line,
                           const std::string &to,
                           std::vector<std::string> to_path) {
            if (from == to)
                return;
            const auto key = std::make_pair(from, to);
            if (edges.count(key) != 0)
                return;
            EdgeInfo info;
            info.path.push_back(step(node, pf.path, from_line));
            for (auto &s : to_path)
                info.path.push_back(std::move(s));
            edges.emplace(key, std::move(info));
        };

        auto acquireAt = [&](const std::string &key, int li,
                             int at_depth, bool allowed) {
            if (!allowed) {
                for (const Held &h : held)
                    addEdge(h.key, h.line, key,
                            {step(node, pf.path, li)});
            }
            held.push_back({key, at_depth, li});
        };

        auto reportBlock = [&](int li, const std::string &what,
                               const std::vector<std::string> &tail) {
            if (exempt_file || held.empty() ||
                node.allowLines.count(li) != 0)
                return;
            const Held &h = held.back();
            Violation v;
            v.kind = "blocking-under-lock";
            v.file = pf.path;
            v.line = li;
            v.function = node.def.display;
            v.mutex = h.key;
            v.path.push_back(step(node, pf.path, h.line));
            for (const auto &s : tail)
                v.path.push_back(s);
            const std::size_t raw = static_cast<std::size_t>(li - 1);
            v.message = what + " while holding " + h.key +
                        " (acquired line " + std::to_string(h.line) +
                        "): " +
                        (raw < pf.rawLines.size()
                             ? trim(pf.rawLines[raw])
                             : std::string());
            analysis.violations.push_back(std::move(v));
        };

        for (int li = node.def.bodyBeginLine;
             li <= node.def.bodyEndLine &&
             li <= static_cast<int>(pf.strippedLines.size());
             ++li) {
            const std::string &line =
                pf.strippedLines[static_cast<std::size_t>(li - 1)];
            const bool allowed = node.allowLines.count(li) != 0;

            // Brace depth at a column of this line (braces are folded
            // into `depth` only once the whole line is processed, so
            // events mid-line need the prefix count).
            auto depthAt = [&](std::size_t pos) {
                int d = depth;
                for (std::size_t k = 0; k < pos && k < line.size(); ++k) {
                    if (line[k] == '{')
                        ++d;
                    else if (line[k] == '}')
                        --d;
                }
                return d;
            };

            // Scoped lock declarations (acquisitions).
            for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                                lockDeclRe());
                 it != std::sregex_iterator(); ++it) {
                const std::string holder = (*it)[1].str();
                const std::string var = (*it)[2].str();
                const std::string args = (*it)[3].str();
                if (args.find("try_to_lock") != std::string::npos ||
                    args.find("defer_lock") != std::string::npos)
                    continue;
                // scoped_lock's multi-acquire uses std::lock's
                // deadlock-avoidance: its own arguments never order
                // against each other, so collect first, then admit.
                std::vector<std::string> keys;
                for (const std::string &arg : splitArgs(args)) {
                    if (arg.find("adopt_lock") != std::string::npos)
                        continue;
                    const std::string key =
                        resolveMutex(arg, node.group);
                    if (!key.empty())
                        keys.push_back(key);
                    if (holder != "scoped_lock")
                        break;
                }
                const int at_depth =
                    depthAt(static_cast<std::size_t>(it->position(0)));
                // Edges only against locks held BEFORE this site: the
                // members of one scoped_lock are admitted as a group
                // and never order against each other.
                const std::size_t held_before = held.size();
                for (const std::string &key : keys) {
                    if (!allowed) {
                        for (std::size_t h = 0; h < held_before; ++h)
                            addEdge(held[h].key, held[h].line, key,
                                    {step(node, pf.path, li)});
                    }
                    held.push_back({key, at_depth, li});
                }
                if (holder == "unique_lock" && keys.size() == 1)
                    lockVars[var] = {keys.front(), at_depth};
            }

            // Manual lock()/unlock() on unique_lock vars or mutexes.
            for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                                kVarLock);
                 it != std::sregex_iterator(); ++it) {
                const std::string recv = (*it)[1].str();
                const bool is_unlock = (*it)[3].str() == "unlock";
                std::string key;
                int at_depth =
                    depthAt(static_cast<std::size_t>(it->position(0)));
                const auto lv = lockVars.find(recv);
                if (lv != lockVars.end()) {
                    key = lv->second.first;
                    at_depth = lv->second.second;
                } else if (mutexes.count(node.group + "::" + recv) !=
                           0) {
                    key = node.group + "::" + recv;
                } else {
                    continue;
                }
                if (is_unlock) {
                    for (std::size_t h = held.size(); h > 0; --h) {
                        if (held[h - 1].key == key) {
                            held.erase(held.begin() +
                                       static_cast<std::ptrdiff_t>(h - 1));
                            break;
                        }
                    }
                } else {
                    acquireAt(key, li, at_depth, allowed);
                }
            }

            // Predicate-less condition-variable waits. A 1-argument
            // .wait(lk) / 2-argument .wait_for(lk, d) has no predicate
            // and relies on the caller re-checking against spurious
            // wakeups; flag it whether or not we resolved the lock.
            std::smatch cvm;
            std::string tail = line;
            while (std::regex_search(tail, cvm, kCvWait)) {
                const std::string fn = cvm[2].str();
                const std::string args = cvm[3].str();
                const std::size_t argc = splitArgs(args).size();
                const bool cv_form = argc >= (fn == "wait" ? 1u : 2u);
                const bool has_pred =
                    argc >= (fn == "wait" ? 2u : 3u);
                const int li_no = li;
                if (cv_form && !has_pred && !exempt_file &&
                    node.allowLines.count(li_no) == 0) {
                    Violation v;
                    v.kind = "blocking-under-lock";
                    v.file = pf.path;
                    v.line = li_no;
                    v.function = node.def.display;
                    v.mutex = held.empty() ? "" : held.back().key;
                    v.path.push_back(step(node, pf.path, li_no));
                    v.message =
                        "condition-variable " + fn +
                        " without a predicate: spurious wakeups make "
                        "the guarded state unreliable; pass the "
                        "predicate overload";
                    analysis.violations.push_back(std::move(v));
                } else if (!cv_form && argc <= 1) {
                    // Zero-arg .wait() (a future join) is handled by
                    // the future-join pattern below.
                }
                tail = cvm.suffix().str();
            }

            // Direct blocking patterns under a held lock.
            if (std::regex_search(line, kSleep))
                reportBlock(li, "sleeps", {});
            if (std::regex_search(line, blockingIoRe()))
                reportBlock(li, "performs blocking I/O", {});
            std::smatch fj;
            std::string fj_tail = line;
            while (std::regex_search(fj_tail, fj, kFutureJoin)) {
                const std::string recv = fj[1].str();
                if (recv != "this" && lockVars.count(recv) == 0 &&
                    kCallKeywords.count(recv) == 0)
                    reportBlock(li, "joins a future (." + fj[3].str() +
                                        "() on `" + recv + "`)",
                                {});
                fj_tail = fj.suffix().str();
            }

            // Calls while holding: edges + transitive blocking.
            if (!held.empty()) {
                for (auto it = std::sregex_iterator(line.begin(),
                                                    line.end(), kCall);
                     it != std::sregex_iterator(); ++it) {
                    const std::string callee = (*it)[1].str();
                    if (kCallKeywords.count(callee) != 0)
                        continue;
                    const auto found = byName.find(callee);
                    if (found == byName.end())
                        continue;
                    for (const std::size_t target : found->second) {
                        if (target == ni || nodes[target].exempt)
                            continue;
                        const Summary &sum = nodes[target].summary;
                        if (!allowed) {
                            for (const auto &[key, path] :
                                 sum.acquires) {
                                bool already = false;
                                for (const Held &h : held)
                                    if (h.key == key)
                                        already = true;
                                if (already)
                                    continue;
                                for (const Held &h : held)
                                    addEdge(h.key, h.line, key, path);
                            }
                        }
                        if (!sum.blocksPath.empty())
                            reportBlock(li,
                                        "calls " +
                                            nodes[target].def.display +
                                            ", which " + sum.blocksKind,
                                        sum.blocksPath);
                    }
                }
            }

            // Brace tracking: release locks whose scope closed.
            for (const char c : line) {
                if (c == '{')
                    ++depth;
                else if (c == '}')
                    --depth;
            }
            held.erase(std::remove_if(held.begin(), held.end(),
                                      [&](const Held &h) {
                                          return h.depth > depth;
                                      }),
                       held.end());
            for (auto it = lockVars.begin(); it != lockVars.end();) {
                if (it->second.second > depth)
                    it = lockVars.erase(it);
                else
                    ++it;
            }
        }
    }

    for (const auto &[key, info] : edges)
        analysis.edges.push_back({key.first, key.second, info.path});

    // ---- Lock-order cycles: iterative Tarjan over the edge graph. ----
    {
        std::vector<std::string> keys;
        std::map<std::string, std::size_t> index;
        for (const auto &[edge, info] : edges) {
            for (const std::string &k : {edge.first, edge.second}) {
                if (index.count(k) == 0) {
                    index.emplace(k, keys.size());
                    keys.push_back(k);
                }
            }
        }
        std::vector<std::vector<std::size_t>> adj(keys.size());
        for (const auto &[edge, info] : edges)
            adj[index[edge.first]].push_back(index[edge.second]);

        const std::size_t n = keys.size();
        std::vector<int> idx(n, -1), low(n, 0), comp(n, -1);
        std::vector<bool> onStack(n, false);
        std::vector<std::size_t> stack;
        int counter = 0, comps = 0;
        struct Frame
        {
            std::size_t v;
            std::size_t child = 0;
        };
        for (std::size_t root = 0; root < n; ++root) {
            if (idx[root] != -1)
                continue;
            std::vector<Frame> frames{{root}};
            idx[root] = low[root] = counter++;
            stack.push_back(root);
            onStack[root] = true;
            while (!frames.empty()) {
                Frame &f = frames.back();
                if (f.child < adj[f.v].size()) {
                    const std::size_t w = adj[f.v][f.child++];
                    if (idx[w] == -1) {
                        idx[w] = low[w] = counter++;
                        stack.push_back(w);
                        onStack[w] = true;
                        frames.push_back({w});
                    } else if (onStack[w]) {
                        low[f.v] = std::min(low[f.v], idx[w]);
                    }
                } else {
                    if (low[f.v] == idx[f.v]) {
                        for (;;) {
                            const std::size_t w = stack.back();
                            stack.pop_back();
                            onStack[w] = false;
                            comp[w] = comps;
                            if (w == f.v)
                                break;
                        }
                        ++comps;
                    }
                    const std::size_t v = f.v;
                    frames.pop_back();
                    if (!frames.empty())
                        low[frames.back().v] =
                            std::min(low[frames.back().v], low[v]);
                }
            }
        }

        // Component member counts; self-loops are impossible (addEdge
        // drops from==to), so any multi-member component is a cycle.
        std::vector<std::size_t> comp_size(
            static_cast<std::size_t>(comps), 0);
        for (std::size_t v = 0; v < n; ++v)
            ++comp_size[static_cast<std::size_t>(comp[v])];
        for (const auto &[edge, info] : edges) {
            const std::size_t a = index[edge.first];
            const std::size_t b = index[edge.second];
            if (comp[a] != comp[b] ||
                comp_size[static_cast<std::size_t>(comp[a])] < 2)
                continue;
            std::string members;
            for (std::size_t v = 0; v < n; ++v) {
                if (comp[v] != comp[a])
                    continue;
                members += (members.empty() ? "" : ", ") + keys[v];
            }
            Violation v;
            v.kind = "lock-order-inversion";
            // Anchor the report at the edge's first witness step.
            const std::string &first = info.path.front();
            const std::size_t paren = first.rfind('(');
            const std::size_t colon = first.rfind(':');
            if (paren != std::string::npos &&
                colon != std::string::npos && colon > paren) {
                v.file = first.substr(paren + 1, colon - paren - 1);
                v.line = std::atoi(first.c_str() + colon + 1);
                v.function = trim(first.substr(0, paren));
            }
            v.mutex = edge.second;
            v.path = info.path;
            v.message = "acquires " + edge.second + " while holding " +
                        edge.first + "; mutexes {" + members +
                        "} form a lock-order cycle";
            analysis.violations.push_back(std::move(v));
        }
    }

    // ---- Annotation coverage. ----
    for (const auto &[key, decl] : mutexes) {
        if (!decl.inLibraryHeader || decl.local)
            continue;
        const std::string group = groupOf(decl.file);
        const auto git = guarded.find(group);
        bool covered = false;
        if (git != guarded.end()) {
            for (const auto &[field, mux] : git->second)
                if (mux == key)
                    covered = true;
        }
        if (covered)
            continue;
        Violation v;
        v.kind = "unannotated-mutex";
        v.file = decl.file;
        v.line = decl.line;
        v.mutex = key;
        v.message = "mutex member `" + decl.name +
                    "` has no ERC_GUARDED_BY(" + decl.name +
                    ") field in its file group; tie the data it "
                    "serializes to it (common/thread_annotations.h)";
        analysis.violations.push_back(std::move(v));
    }

    static const std::regex kCapability(
        R"(\bERC_(REQUIRES|ACQUIRE|RELEASE|NO_THREAD_SAFETY_ANALYSIS)\b)");
    static const std::regex kIdent(R"([A-Za-z_][A-Za-z0-9_]*)");
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
        const Node &node = nodes[ni];
        if (node.exempt)
            continue;
        const auto git = guarded.find(node.group);
        if (git == guarded.end())
            continue;
        // Constructors/destructors: single-threaded by convention.
        const auto cls = classNames.find(node.group);
        if (cls != classNames.end() &&
            cls->second.count(node.def.name) != 0)
            continue;
        const ParsedFile &pf = parsed[node.fileIndex];
        // Signature region: annotations between declarator and body.
        std::string sig;
        for (int li = node.def.line;
             li <= node.def.bodyBeginLine &&
             li <= static_cast<int>(pf.strippedLines.size());
             ++li)
            sig += pf.strippedLines[static_cast<std::size_t>(li - 1)] +
                   "\n";
        const bool annotated = std::regex_search(sig, kCapability);
        if (annotated)
            continue;
        std::set<std::string> acquired;
        for (const Acquisition &acq : acquisitions[ni])
            acquired.insert(acq.key);
        for (int li = node.def.bodyBeginLine;
             li <= node.def.bodyEndLine &&
             li <= static_cast<int>(pf.strippedLines.size());
             ++li) {
            if (node.allowLines.count(li) != 0)
                continue;
            const std::string &line =
                pf.strippedLines[static_cast<std::size_t>(li - 1)];
            bool flagged = false;
            for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                                kIdent);
                 it != std::sregex_iterator() && !flagged; ++it) {
                const std::string ident = (*it)[0].str();
                const auto field = git->second.find(ident);
                if (field == git->second.end())
                    continue;
                if (acquired.count(field->second) != 0)
                    continue;
                Violation v;
                v.kind = "unguarded-access";
                v.file = pf.path;
                v.line = li;
                v.function = node.def.display;
                v.mutex = field->second;
                v.message = "touches `" + ident + "` (guarded by " +
                            field->second +
                            ") without acquiring the mutex or carrying "
                            "ERC_REQUIRES/ERC_ACQUIRE on the "
                            "definition";
                analysis.violations.push_back(std::move(v));
                flagged = true; // One report per line is enough.
            }
            if (flagged)
                break; // One report per function is enough.
        }
    }

    std::sort(analysis.violations.begin(), analysis.violations.end(),
              [](const Violation &a, const Violation &b) {
                  if (a.kind != b.kind)
                      return a.kind < b.kind;
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.mutex < b.mutex;
              });
    std::sort(analysis.edges.begin(), analysis.edges.end(),
              [](const LockEdge &a, const LockEdge &b) {
                  if (a.from != b.from)
                      return a.from < b.from;
                  return a.to < b.to;
              });
    return analysis;
}

std::string
renderText(const Analysis &analysis)
{
    std::ostringstream oss;
    for (const Violation &v : analysis.violations) {
        oss << v.file << ":" << v.line << ": [" << v.kind << "] "
            << v.message << "\n";
        if (!v.path.empty()) {
            oss << "    acquisition path: ";
            for (std::size_t i = 0; i < v.path.size(); ++i)
                oss << (i == 0 ? "" : " -> ") << v.path[i];
            oss << "\n";
        }
    }
    oss << "erec_conclint: " << analysis.fileCount << " files, "
        << analysis.functionCount << " functions, "
        << analysis.mutexCount << " mutexes, " << analysis.lockSiteCount
        << " lock sites, " << analysis.edges.size() << " edges, "
        << analysis.violations.size() << " violation"
        << (analysis.violations.size() == 1 ? "" : "s") << ": "
        << (analysis.pass() ? "PASS" : "FAIL") << "\n";
    return oss.str();
}

std::string
renderJson(const Analysis &analysis)
{
    std::ostringstream oss;
    oss << "{\n";
    oss << "  \"schema\": \"erec_conclint/v1\",\n";
    oss << "  \"files\": " << analysis.fileCount << ",\n";
    oss << "  \"functions\": " << analysis.functionCount << ",\n";
    oss << "  \"mutexes\": " << analysis.mutexCount << ",\n";
    oss << "  \"lock_sites\": " << analysis.lockSiteCount << ",\n";
    oss << "  \"pass\": " << (analysis.pass() ? "true" : "false")
        << ",\n";
    oss << "  \"edges\": [";
    for (std::size_t i = 0; i < analysis.edges.size(); ++i) {
        const LockEdge &e = analysis.edges[i];
        oss << (i == 0 ? "\n" : ",\n");
        oss << "    {\"from\": \"" << jsonEscape(e.from)
            << "\", \"to\": \"" << jsonEscape(e.to) << "\", \"path\": [";
        for (std::size_t j = 0; j < e.path.size(); ++j)
            oss << (j == 0 ? "" : ", ") << "\"" << jsonEscape(e.path[j])
                << "\"";
        oss << "]}";
    }
    oss << (analysis.edges.empty() ? "],\n" : "\n  ],\n");
    oss << "  \"violations\": [";
    for (std::size_t i = 0; i < analysis.violations.size(); ++i) {
        const Violation &v = analysis.violations[i];
        oss << (i == 0 ? "\n" : ",\n");
        oss << "    {\n";
        oss << "      \"kind\": \"" << jsonEscape(v.kind) << "\",\n";
        oss << "      \"file\": \"" << jsonEscape(v.file) << "\",\n";
        oss << "      \"line\": " << v.line << ",\n";
        oss << "      \"function\": \"" << jsonEscape(v.function)
            << "\",\n";
        oss << "      \"mutex\": \"" << jsonEscape(v.mutex) << "\",\n";
        oss << "      \"path\": [";
        for (std::size_t j = 0; j < v.path.size(); ++j)
            oss << (j == 0 ? "" : ", ") << "\"" << jsonEscape(v.path[j])
                << "\"";
        oss << "],\n";
        oss << "      \"message\": \"" << jsonEscape(v.message)
            << "\"\n";
        oss << "    }";
    }
    oss << (analysis.violations.empty() ? "]\n" : "\n  ]\n");
    oss << "}\n";
    return oss.str();
}

} // namespace erec::conclint
