/**
 * @file
 * Command-line driver of the repo linter: walks the directories given
 * as arguments, lints every C++ source/header against the rules in
 * lint_core.h, prints diagnostics and exits non-zero if any were found.
 *
 * Usage: erec_lint <dir-or-file>...
 */

#include "tools/lint/lint_core.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

bool
isCxxFile(const fs::path &path)
{
    const auto ext = path.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".h" || ext == ".hpp";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: erec_lint <dir-or-file>...\n";
        return 2;
    }

    std::vector<fs::path> files;
    for (int i = 1; i < argc; ++i) {
        const fs::path root(argv[i]);
        if (fs::is_regular_file(root)) {
            files.push_back(root);
            continue;
        }
        if (!fs::is_directory(root)) {
            std::cerr << "erec_lint: no such file or directory: " << root
                      << "\n";
            return 2;
        }
        for (const auto &entry : fs::recursive_directory_iterator(root)) {
            if (entry.is_regular_file() && isCxxFile(entry.path()))
                files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());

    int violations = 0;
    for (const auto &file : files) {
        const auto diags =
            erec::lint::lintContent(file.generic_string(), readFile(file));
        for (const auto &d : diags) {
            std::cerr << erec::lint::formatDiagnostic(d) << "\n";
            ++violations;
        }
    }

    if (violations > 0) {
        std::cerr << "erec_lint: " << violations << " violation"
                  << (violations == 1 ? "" : "s") << " in " << files.size()
                  << " files\n";
        return 1;
    }
    std::cout << "erec_lint: " << files.size() << " files clean\n";
    return 0;
}
