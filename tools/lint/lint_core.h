#pragma once

/**
 * @file
 * Rule engine of the repo-specific linter (see tools/lint/README in the
 * top-level README's "Correctness tooling" section).
 *
 * The rules encode invariants of this codebase that clang-tidy cannot
 * express:
 *
 *  - raw-throw: library code must raise errors through erec::fatal /
 *    erec::panic / ERC_CHECK / ERC_ASSERT (common/error.h), never a raw
 *    `throw`, so every error carries the ConfigError/InternalError
 *    taxonomy and uniform message formatting.
 *  - unseeded-random: no std::rand, srand, std::random_device or
 *    time(nullptr) anywhere outside common/rng.* — all stochastic code
 *    draws from the seeded erec::Rng so experiments are reproducible.
 *  - raw-thread: no std::thread / std::jthread construction outside
 *    src/elasticrec/runtime/ — concurrency goes through
 *    runtime::ThreadPool / runtime::Executor so thread counts stay an
 *    explicit, observable resource (tests may spawn threads freely).
 *  - raw-intrinsics: SIMD intrinsics (<immintrin.h>, __m256/__m512
 *    vector types, _mm*_ calls) live only in src/elasticrec/kernels/ —
 *    the kernel-backend registry is the one place vector code is
 *    allowed in library, bench and example code, so every SIMD path
 *    has a scalar reference implementation and a cross-backend
 *    bit-identity test.
 *  - iostream-in-library: library code logs through common/logging.h;
 *    #include <iostream> is only allowed in tests, benches, examples
 *    and tools.
 *  - header-pragma-once: every header starts with #pragma once.
 *  - header-namespace: library headers declare namespace erec.
 *  - unannotated-mutex: a std::mutex / std::shared_mutex member in a
 *    library header must come with an ERC_GUARDED_BY(member) /
 *    ERC_PT_GUARDED_BY(member) annotated field in the same file
 *    (common/thread_annotations.h), so clang's -Wthread-safety pass
 *    can actually check the locking discipline; runtime/ pool
 *    internals are exempt (the blessed concurrency module).
 *  - hot-path-annotation: ERC_HOT_PATH (common/hotpath.h) is only
 *    valid directly before a function declaration — the tools/hotpath
 *    analyzer derives its roots from the declarator after the token —
 *    and ERC_HOT_PATH_ALLOW must carry a non-empty string reason
 *    (the waiver is the documentation). common/hotpath.h itself is
 *    exempt.
 *  - trace-name-literal: span-recording calls (addSpan, recordSpan,
 *    recordLink) in library code must pass interned obs::NameIds —
 *    never an inline string literal or std::string temporary, which
 *    would allocate on the flight recorder's hot path or silently
 *    select the legacy string overload. obs/trace.h (which declares
 *    that legacy overload for tools and tests) is exempt.
 *  - excess-default-params: no parameter list in a library header may
 *    declare more than two defaulted parameters — long trails of
 *    positional defaults are unreadable at call sites; fold them into
 *    an options struct (e.g. sim::ExperimentOptions, StackOptions).
 *    The allow() marker must sit on the line that opens the
 *    parameter list.
 *
 * A violation line can be suppressed with a trailing comment:
 *     // erec-lint: allow(<rule>)
 * The two header-* rules are file-scoped; their allow() marker may sit
 * on any line of the file.
 */

#include <string>
#include <vector>

namespace erec::lint {

/** One rule violation at a source location. */
struct Diagnostic
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

/** Which rule set applies to a file, derived from its repo path. */
enum class FileClass
{
    LibrarySource, //!< src/**.cc — all rules.
    LibraryHeader, //!< src/**.h — all rules + header-namespace.
    TestSource,    //!< tests/** — determinism rules only.
    BenchSource,   //!< bench/** — determinism rules only.
    ExampleSource, //!< examples/** — determinism rules only.
    Skip,          //!< Anything else (third-party, build trees, docs).
};

/** Classify a path by its directory components and extension. */
FileClass classifyPath(const std::string &path);

/**
 * Blank out comments, string literals and char literals (raw strings
 * included), preserving newlines so diagnostics keep exact line
 * numbers. Rules match against the stripped text; suppression markers
 * are collected from the raw text first.
 */
std::string stripCommentsAndStrings(const std::string &content);

/** Lint one file's content. `path` is repo-relative or absolute. */
std::vector<Diagnostic> lintContent(const std::string &path,
                                    const std::string &content);

/** Format a diagnostic as "file:line: [rule] message". */
std::string formatDiagnostic(const Diagnostic &d);

} // namespace erec::lint
