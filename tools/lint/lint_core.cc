#include "tools/lint/lint_core.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>

namespace erec::lint {

namespace {

/** True when `path` contains `component` as a whole directory name. */
bool
hasDirComponent(const std::string &path, const std::string &component)
{
    std::size_t pos = 0;
    while ((pos = path.find(component, pos)) != std::string::npos) {
        const bool at_start = pos == 0 || path[pos - 1] == '/';
        const std::size_t end = pos + component.size();
        const bool at_end = end < path.size() && path[end] == '/';
        if (at_start && at_end)
            return true;
        pos = end;
    }
    return false;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
isHeaderPath(const std::string &path)
{
    return endsWith(path, ".h") || endsWith(path, ".hpp");
}

/** Split into lines; the trailing newline does not open an empty line. */
std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= content.size()) {
        std::size_t nl = content.find('\n', start);
        if (nl == std::string::npos) {
            if (start < content.size())
                lines.push_back(content.substr(start));
            break;
        }
        lines.push_back(content.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

/** Rules suppressed via "erec-lint: allow(rule)" markers. */
struct Suppressions
{
    /** line number (1-based) -> rules allowed on that line. */
    std::vector<std::vector<std::string>> perLine;
    /** Rules allowed anywhere in the file (file-scoped rules only). */
    std::vector<std::string> fileWide;

    bool
    allows(int line, const std::string &rule) const
    {
        const auto &rules = perLine[static_cast<std::size_t>(line - 1)];
        return std::find(rules.begin(), rules.end(), rule) != rules.end();
    }

    bool
    allowsFileWide(const std::string &rule) const
    {
        return std::find(fileWide.begin(), fileWide.end(), rule) !=
               fileWide.end();
    }
};

Suppressions
collectSuppressions(const std::vector<std::string> &raw_lines)
{
    static const std::regex kAllow(
        R"(erec-lint:\s*allow\(([A-Za-z0-9_-]+)\))");
    Suppressions sup;
    sup.perLine.resize(raw_lines.size());
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
        auto begin = std::sregex_iterator(raw_lines[i].begin(),
                                          raw_lines[i].end(), kAllow);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            sup.perLine[i].push_back((*it)[1].str());
            sup.fileWide.push_back((*it)[1].str());
        }
    }
    return sup;
}

struct LineRule
{
    std::string name;
    std::regex pattern;
    std::string message;
    /** File classes the rule applies to. */
    std::vector<FileClass> classes;
    /** Path suffixes exempt from the rule (the blessed home of the
     *  construct, e.g. common/error.h for `throw`). */
    std::vector<std::string> exemptSuffixes;
    /** Directory components exempt from the rule (the blessed home
     *  when it is a whole module, e.g. runtime/ for std::thread). */
    std::vector<std::string> exemptDirs;
    /** When non-empty, the rule applies ONLY under these directory
     *  components (e.g. sim/ for the closure-free event engine). */
    std::vector<std::string> onlyDirs;
};

const std::vector<LineRule> &
lineRules()
{
    static const std::vector<LineRule> kRules = {
        {
            "raw-throw",
            std::regex(R"(\bthrow\b)"),
            "raw `throw` in library code; use erec::fatal/panic or "
            "ERC_CHECK/ERC_ASSERT from elasticrec/common/error.h",
            {FileClass::LibrarySource, FileClass::LibraryHeader},
            {"common/error.h"},
            {},
            {},
        },
        {
            "unseeded-random",
            std::regex(R"(\bstd\s*::\s*rand\b|\bsrand\s*\()"
                       R"(|\brandom_device\b)"
                       R"(|\btime\s*\(\s*(nullptr|NULL)\s*\))"),
            "unseeded randomness breaks experiment reproducibility; "
            "draw from a seeded erec::Rng (elasticrec/common/rng.h)",
            {FileClass::LibrarySource, FileClass::LibraryHeader,
             FileClass::TestSource, FileClass::BenchSource,
             FileClass::ExampleSource},
            {"common/rng.h", "common/rng.cc"},
            {},
            {},
        },
        {
            "windowed-percentile",
            std::regex(R"(\bWindowedPercentile\b)"),
            "WindowedPercentile keeps every raw sample; monitoring "
            "paths must use obs::WindowedQuantileSketch "
            "(elasticrec/obs/sketch.h) for O(1) inserts and mergeable "
            "state",
            {FileClass::LibrarySource, FileClass::LibraryHeader,
             FileClass::BenchSource, FileClass::ExampleSource},
            {"common/stats.h", "common/stats.cc"},
            {},
            {},
        },
        {
            "raw-thread",
            std::regex(R"(\bstd\s*::\s*(thread|jthread)\b)"),
            "raw std::thread outside src/elasticrec/runtime/; serving "
            "code must run work through runtime::ThreadPool / "
            "runtime::Executor so thread counts stay an explicit, "
            "observable resource",
            {FileClass::LibrarySource, FileClass::LibraryHeader,
             FileClass::BenchSource, FileClass::ExampleSource},
            {},
            {"runtime"},
            {},
        },
        {
            "raw-sleep",
            std::regex(R"(\bstd\s*::\s*this_thread\s*::\s*)"
                       R"(sleep_(for|until)\b)"),
            "raw sleep in library code defeats the sim's deterministic "
            "clock and hides latency from the tracer; wait on a "
            "condition variable with a deadline, or drive time through "
            "sim::Clock",
            {FileClass::LibrarySource, FileClass::LibraryHeader},
            {},
            {},
            {},
        },
        {
            "raw-intrinsics",
            std::regex(R"(^\s*#\s*include\s*<[a-z0-9]*intrin\.h>)"
                       R"(|\b__m(?:64|128|256|512)[di]?\b)"
                       R"(|\b_mm(?:256|512)?_[A-Za-z0-9_]+\s*\()"),
            "raw SIMD intrinsics outside src/elasticrec/kernels/; "
            "vector code goes through the kernels::KernelBackend "
            "registry so every kernel has a scalar reference and a "
            "bit-identity test",
            {FileClass::LibrarySource, FileClass::LibraryHeader,
             FileClass::BenchSource, FileClass::ExampleSource},
            {},
            {"kernels"},
            {},
        },
        {
            "iostream-in-library",
            std::regex(R"(^\s*#\s*include\s*<iostream>)"
                       R"(|\bstd\s*::\s*(cout|cerr|clog)\b)"),
            "library code must log through elasticrec/common/logging.h, "
            "not <iostream>",
            {FileClass::LibrarySource, FileClass::LibraryHeader},
            {},
            {},
            {},
        },
        {
            "sim-std-function",
            std::regex(R"(\bstd\s*::\s*function\s*<)"),
            "std::function in a sim/ library header; the event engine "
            "dispatches POD EventRecords through EventSink/PodSink "
            "(elasticrec/sim/event_queue.h) — captured closures "
            "heap-allocate on the gated query path (DESIGN.md "
            "section 13)",
            {FileClass::LibraryHeader},
            {},
            {},
            {"sim"},
        },
    };
    return kRules;
}

bool
ruleApplies(const LineRule &rule, FileClass cls, const std::string &path)
{
    if (std::find(rule.classes.begin(), rule.classes.end(), cls) ==
        rule.classes.end()) {
        return false;
    }
    for (const auto &suffix : rule.exemptSuffixes) {
        if (endsWith(path, suffix))
            return false;
    }
    for (const auto &dir : rule.exemptDirs) {
        if (hasDirComponent(path, dir))
            return false;
    }
    if (!rule.onlyDirs.empty()) {
        bool inside = false;
        for (const auto &dir : rule.onlyDirs)
            if (hasDirComponent(path, dir))
                inside = true;
        if (!inside)
            return false;
    }
    return true;
}

/**
 * excess-default-params: walk every top-level parenthesised group in
 * the stripped text and count `=` tokens at paren depth 1 outside any
 * nested braces/brackets — each one is a defaulted parameter in a
 * declaration (comparison and compound-assignment operators are
 * excluded by their neighbouring characters; `= default` / `= 0`
 * follow the closing paren and never count). More than two defaults
 * means the signature should take an options struct instead.
 */
void
checkExcessDefaultParams(const std::string &path,
                         const std::string &stripped,
                         const Suppressions &sup,
                         std::vector<Diagnostic> *diags)
{
    static const std::string kCompoundOps = "=<>!+-*/%&|^";
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = stripped.size();
    while (i < n) {
        const char c = stripped[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (c != '(') {
            ++i;
            continue;
        }
        const int start_line = line;
        int paren = 1;
        int nested = 0; // {} / [] nesting inside the group
        int defaults = 0;
        ++i;
        while (i < n && paren > 0) {
            const char g = stripped[i];
            if (g == '\n')
                ++line;
            else if (g == '(')
                ++paren;
            else if (g == ')')
                --paren;
            else if (g == '{' || g == '[')
                ++nested;
            else if (g == '}' || g == ']')
                nested = std::max(0, nested - 1);
            else if (g == '=' && paren == 1 && nested == 0) {
                const char prev = stripped[i - 1];
                const char next = i + 1 < n ? stripped[i + 1] : '\0';
                if (kCompoundOps.find(prev) == std::string::npos &&
                    next != '=')
                    ++defaults;
            }
            ++i;
        }
        if (defaults > 2 &&
            !sup.allows(start_line, "excess-default-params")) {
            diags->push_back(
                {path, start_line, "excess-default-params",
                 "parameter list declares " + std::to_string(defaults) +
                     " defaulted parameters; fold them into an "
                     "options struct (like sim::ExperimentOptions) so "
                     "call sites stay readable"});
        }
    }
}

/**
 * unannotated-mutex: a std::mutex / std::shared_mutex *member* in a
 * library header (a declaration like `mutable std::mutex mutex_;`,
 * not a lock-holder such as std::unique_lock<std::mutex>) is only
 * meaningful when the data it serializes is tied to it, so some field
 * in the same file must carry ERC_GUARDED_BY(<member>) or
 * ERC_PT_GUARDED_BY(<member>) (common/thread_annotations.h). Without
 * one, clang's -Wthread-safety pass has nothing to check and the
 * locking discipline lives only in comments. runtime/ pool internals
 * are exempt via the rule table's exemptDirs (their queues annotate
 * already; the exemption keeps scratch mutexes in that blessed module
 * from blocking experiments).
 */
void
checkUnannotatedMutex(const std::string &path,
                      const std::vector<std::string> &stripped_lines,
                      const std::string &stripped,
                      const Suppressions &sup,
                      std::vector<Diagnostic> *diags)
{
    static const std::regex kMutexMember(
        R"(\bstd\s*::\s*(?:shared_)?mutex\s+([A-Za-z_][A-Za-z0-9_]*)\s*;)");
    for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
        std::smatch match;
        if (!std::regex_search(stripped_lines[i], match, kMutexMember))
            continue;
        const int line_no = static_cast<int>(i + 1);
        if (sup.allows(line_no, "unannotated-mutex"))
            continue;
        const std::string name = match[1].str();
        const std::regex guarded(R"(\bERC_(?:PT_)?GUARDED_BY\s*\(\s*)" +
                                 name + R"(\s*\))");
        if (std::regex_search(stripped, guarded))
            continue;
        diags->push_back(
            {path, line_no, "unannotated-mutex",
             "mutex member `" + name + "` has no ERC_GUARDED_BY(" +
                 name + ") field in this header; annotate the data it "
                 "protects (elasticrec/common/thread_annotations.h) so "
                 "clang -Wthread-safety can check the locking "
                 "discipline"});
    }
}

/**
 * hot-path-annotation: hygiene for the ERC_HOT_PATH markers that feed
 * tools/hotpath (common/hotpath.h). A bare ERC_HOT_PATH must annotate
 * a function declaration — an identifier plus parameter list must
 * follow before any `;`, `=` or `}` — because the hotpath analyzer
 * derives its roots from the declarator after the token; an annotation
 * on a variable or a dangling one silently creates no root. An
 * ERC_HOT_PATH_ALLOW must carry a non-empty string reason: the waiver
 * *is* the documentation of why the allocation is acceptable. The bare
 * check reads stripped lines (prose mentions in comments don't trip
 * it); the ALLOW check reads raw lines, because the hotpath analyzer
 * itself honours trailing-comment placement. common/hotpath.h (the
 * macro definitions) is exempt.
 */
void
checkHotPathAnnotation(const std::string &path,
                       const std::vector<std::string> &raw_lines,
                       const std::vector<std::string> &stripped_lines,
                       const Suppressions &sup,
                       std::vector<Diagnostic> *diags)
{
    static const std::regex kBare(R"(\bERC_HOT_PATH\b)");
    static const std::regex kAllow(R"(\bERC_HOT_PATH_ALLOW\b)");
    static const std::regex kAllowReason(
        R"(\bERC_HOT_PATH_ALLOW\(\s*"[^"]+")");
    for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(stripped_lines[i], m, kBare))
            continue;
        const int line_no = static_cast<int>(i + 1);
        if (sup.allows(line_no, "hot-path-annotation"))
            continue;
        // Bounded lookahead over the stripped text after the token.
        std::string tail = stripped_lines[i].substr(
            static_cast<std::size_t>(m.position(0) + m.length(0)));
        for (std::size_t j = i + 1;
             j < stripped_lines.size() && j < i + 6; ++j) {
            tail += "\n";
            tail += stripped_lines[j];
        }
        bool ok = false;
        const std::size_t paren = tail.find('(');
        const std::size_t stop = tail.find_first_of(";=}");
        if (paren != std::string::npos &&
            (stop == std::string::npos || paren < stop)) {
            std::size_t k = paren;
            while (k > 0 && std::isspace(static_cast<unsigned char>(
                                tail[k - 1])))
                --k;
            ok = k > 0 && (std::isalnum(static_cast<unsigned char>(
                               tail[k - 1])) ||
                           tail[k - 1] == '_');
        }
        if (!ok) {
            diags->push_back(
                {path, line_no, "hot-path-annotation",
                 "ERC_HOT_PATH must annotate a function declaration "
                 "(identifier + parameter list must follow); on "
                 "anything else the hotpath analyzer derives no root"});
        }
    }
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
        if (!std::regex_search(raw_lines[i], kAllow))
            continue;
        const int line_no = static_cast<int>(i + 1);
        if (sup.allows(line_no, "hot-path-annotation"))
            continue;
        if (std::regex_search(raw_lines[i], kAllowReason))
            continue;
        diags->push_back(
            {path, line_no, "hot-path-annotation",
             "ERC_HOT_PATH_ALLOW requires a non-empty string reason "
             "explaining why this allocation is acceptable on the hot "
             "path"});
    }
}

/**
 * trace-name-literal: span-recording calls in library code must be
 * handed interned NameIds, never an inline string literal or a
 * std::string temporary. The flight recorder's hot path stores a
 * 4-byte id per record; a string argument either allocates per span or
 * silently selects the legacy Tracer overload, and both defeat the
 * ERC_HOT_PATH allocation budget. Detection uses the RAW lines:
 * stripCommentsAndStrings blanks the quotes themselves, so the literal
 * is only visible in the original text. The call is located on the
 * stripped line first (so a prose mention in a comment can't trip the
 * rule), then the statement — joined across up to three continuation
 * lines, since formatters wrap the name argument — is scanned for a
 * quoted literal or a std::string construction.
 */
void
checkTraceNameLiteral(const std::string &path,
                      const std::vector<std::string> &raw_lines,
                      const std::vector<std::string> &stripped_lines,
                      const Suppressions &sup,
                      std::vector<Diagnostic> *diags)
{
    static const std::regex kTraceCall(
        R"(\b(addSpan|recordSpan|recordLink)\s*\()");
    static const std::regex kLiteralArg(
        R"(\b(addSpan|recordSpan|recordLink)\s*\([^;]*("|\bstd\s*::\s*string\b))");
    for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
        if (!std::regex_search(stripped_lines[i], kTraceCall))
            continue;
        const int line_no = static_cast<int>(i + 1);
        if (sup.allows(line_no, "trace-name-literal"))
            continue;
        std::string stmt = raw_lines[i];
        for (std::size_t j = i + 1;
             j < raw_lines.size() && j < i + 4 &&
             stmt.find(';') == std::string::npos;
             ++j)
            stmt += " " + raw_lines[j];
        if (!std::regex_search(stmt, kLiteralArg))
            continue;
        diags->push_back(
            {path, line_no, "trace-name-literal",
             "span names on trace-record calls must be interned "
             "NameIds (obs::internSpanName at static-init time), not "
             "inline string literals or std::string temporaries"});
    }
}

/** First non-blank line of stripped content, with its line number. */
std::pair<std::string, int>
firstCodeLine(const std::vector<std::string> &stripped_lines)
{
    for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
        const auto &line = stripped_lines[i];
        if (std::any_of(line.begin(), line.end(), [](unsigned char c) {
                return !std::isspace(c);
            })) {
            return {line, static_cast<int>(i + 1)};
        }
    }
    return {"", 0};
}

} // namespace

FileClass
classifyPath(const std::string &path)
{
    const bool source = endsWith(path, ".cc") || endsWith(path, ".cpp");
    if (!source && !isHeaderPath(path))
        return FileClass::Skip;
    if (hasDirComponent(path, "src"))
        return isHeaderPath(path) ? FileClass::LibraryHeader
                                  : FileClass::LibrarySource;
    if (hasDirComponent(path, "tests"))
        return FileClass::TestSource;
    if (hasDirComponent(path, "bench"))
        return FileClass::BenchSource;
    if (hasDirComponent(path, "examples"))
        return FileClass::ExampleSource;
    return FileClass::Skip;
}

std::string
stripCommentsAndStrings(const std::string &content)
{
    std::string out;
    out.reserve(content.size());
    enum class State { Code, LineComment, BlockComment, String, Char };
    State state = State::Code;

    auto emit = [&out](char c) {
        out.push_back(c == '\n' || c == '\t' ? c : ' ');
    };

    std::size_t i = 0;
    const std::size_t n = content.size();
    while (i < n) {
        const char c = content[i];
        const char next = i + 1 < n ? content[i + 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                emit(c);
                emit(next);
                i += 2;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                emit(c);
                emit(next);
                i += 2;
            } else if (c == 'R' && next == '"' &&
                       (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                       content[i - 1])) &&
                                   content[i - 1] != '_'))) {
                // Raw string literal: R"delim( ... )delim"
                std::size_t paren = content.find('(', i + 2);
                if (paren == std::string::npos) {
                    emit(c);
                    ++i;
                    break;
                }
                const std::string delim =
                    content.substr(i + 2, paren - (i + 2));
                const std::string closer = ")" + delim + "\"";
                std::size_t close = content.find(closer, paren + 1);
                const std::size_t end = close == std::string::npos
                                            ? n
                                            : close + closer.size();
                for (; i < end; ++i)
                    emit(content[i]);
            } else if (c == '"') {
                state = State::String;
                emit(c);
                ++i;
            } else if (c == '\'') {
                state = State::Char;
                emit(c);
                ++i;
            } else {
                out.push_back(c);
                ++i;
            }
            break;
          case State::LineComment:
            if (c == '\n')
                state = State::Code;
            emit(c);
            ++i;
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                emit(c);
                emit(next);
                i += 2;
            } else {
                emit(c);
                ++i;
            }
            break;
          case State::String:
          case State::Char: {
            const char quote = state == State::String ? '"' : '\'';
            if (c == '\\' && i + 1 < n) {
                emit(c);
                emit(next);
                i += 2;
            } else {
                if (c == quote)
                    state = State::Code;
                emit(c);
                ++i;
            }
            break;
          }
        }
    }
    return out;
}

std::vector<Diagnostic>
lintContent(const std::string &path, const std::string &content)
{
    std::vector<Diagnostic> diags;
    const FileClass cls = classifyPath(path);
    if (cls == FileClass::Skip)
        return diags;

    const auto raw_lines = splitLines(content);
    const std::string stripped = stripCommentsAndStrings(content);
    const auto stripped_lines = splitLines(stripped);
    const auto sup = collectSuppressions(raw_lines);

    for (const auto &rule : lineRules()) {
        if (!ruleApplies(rule, cls, path))
            continue;
        for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
            const int line_no = static_cast<int>(i + 1);
            if (!std::regex_search(stripped_lines[i], rule.pattern))
                continue;
            if (sup.allows(line_no, rule.name))
                continue;
            diags.push_back({path, line_no, rule.name, rule.message});
        }
    }

    if (isHeaderPath(path)) {
        const auto [first, line_no] = firstCodeLine(stripped_lines);
        static const std::regex kPragmaOnce(
            R"(^\s*#\s*pragma\s+once\s*$)");
        if (!std::regex_search(first, kPragmaOnce) &&
            !sup.allowsFileWide("header-pragma-once")) {
            diags.push_back({path, std::max(line_no, 1),
                             "header-pragma-once",
                             "headers must start with #pragma once"});
        }
    }

    if (cls == FileClass::LibraryHeader)
        checkExcessDefaultParams(path, stripped, sup, &diags);

    // Same exemption mechanism as the rule table's exemptSuffixes:
    // common/hotpath.h is where the macros themselves are defined.
    if ((cls == FileClass::LibrarySource ||
         cls == FileClass::LibraryHeader) &&
        !endsWith(path, "common/hotpath.h")) {
        checkHotPathAnnotation(path, raw_lines, stripped_lines, sup,
                               &diags);
    }

    // obs/trace.h declares the legacy string-name Tracer overload the
    // rule steers library code away from (tools and tests still use
    // it); everywhere else in the library, trace names must be ids.
    if ((cls == FileClass::LibrarySource ||
         cls == FileClass::LibraryHeader) &&
        !endsWith(path, "obs/trace.h")) {
        checkTraceNameLiteral(path, raw_lines, stripped_lines, sup,
                              &diags);
    }

    // Same exemption mechanism as the rule table's exemptDirs:
    // runtime/ is the blessed home of pool/queue internals.
    if (cls == FileClass::LibraryHeader &&
        !hasDirComponent(path, "runtime")) {
        checkUnannotatedMutex(path, stripped_lines, stripped, sup,
                              &diags);
    }

    if (cls == FileClass::LibraryHeader) {
        static const std::regex kNamespace(R"(\bnamespace\s+erec\b)");
        bool found = false;
        for (const auto &line : stripped_lines) {
            if (std::regex_search(line, kNamespace)) {
                found = true;
                break;
            }
        }
        if (!found && !sup.allowsFileWide("header-namespace")) {
            diags.push_back({path, 1, "header-namespace",
                             "library headers must declare their "
                             "contents inside namespace erec"});
        }
    }

    return diags;
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    std::ostringstream oss;
    oss << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message;
    return oss.str();
}

} // namespace erec::lint
