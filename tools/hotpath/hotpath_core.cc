#include "tools/hotpath/hotpath_core.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <queue>
#include <regex>
#include <set>
#include <sstream>

#include "tools/lint/lint_core.h"

namespace erec::hotpath {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Keywords that can precede a `(` but never name a function. */
const std::set<std::string> &
keywordSet()
{
    static const std::set<std::string> kKeywords{
        "if",       "for",     "while",   "switch",  "catch",
        "return",   "sizeof",  "alignof", "alignas", "decltype",
        "new",      "delete",  "throw",   "co_await", "co_return",
        "co_yield", "static_assert", "noexcept", "typeid", "assert",
    };
    return kKeywords;
}

std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream iss(content);
    while (std::getline(iss, line))
        lines.push_back(line);
    return lines;
}

} // namespace

/**
 * Blank preprocessor directives (including `\` continuations) in
 * already-stripped text, preserving newlines, so `#define ERC_HOT_PATH`
 * in common/hotpath.h never registers as an annotation and macro
 * bodies never contribute calls. Non-static: erec_conclint reuses it.
 */
std::string
blankPreprocessorLines(const std::string &stripped)
{
    std::string out = stripped;
    std::size_t i = 0;
    const std::size_t n = out.size();
    while (i < n) {
        const std::size_t line_start = i;
        std::size_t line_end = out.find('\n', i);
        if (line_end == std::string::npos)
            line_end = n;
        std::size_t first = line_start;
        while (first < line_end &&
               std::isspace(static_cast<unsigned char>(out[first])))
            ++first;
        bool directive = first < line_end && out[first] == '#';
        while (directive) {
            // Blank this line; if it ends in `\`, the next line is
            // part of the directive too.
            std::size_t last = line_end;
            while (last > line_start &&
                   std::isspace(static_cast<unsigned char>(out[last - 1])))
                --last;
            const bool continued = last > line_start && out[last - 1] == '\\';
            for (std::size_t j = line_start; j < line_end; ++j)
                out[j] = ' ';
            if (!continued || line_end >= n)
                break;
            i = line_end + 1;
            const std::size_t next_start = i;
            line_end = out.find('\n', i);
            if (line_end == std::string::npos)
                line_end = n;
            // The continuation line is blanked unconditionally.
            std::size_t cont_last = line_end;
            while (cont_last > next_start &&
                   std::isspace(
                       static_cast<unsigned char>(out[cont_last - 1])))
                --cont_last;
            const bool cont_continued =
                cont_last > next_start && out[cont_last - 1] == '\\';
            for (std::size_t j = next_start; j < line_end; ++j)
                out[j] = ' ';
            if (!cont_continued)
                break;
        }
        i = line_end == n ? n : line_end + 1;
    }
    return out;
}

namespace {

/** 1-based line number of offset `pos` in `text`. */
int
lineOf(const std::string &text, std::size_t pos)
{
    return 1 + static_cast<int>(
                   std::count(text.begin(), text.begin() +
                       static_cast<std::ptrdiff_t>(std::min(pos, text.size())),
                       '\n'));
}

/** Skip a balanced `open`...`close` group starting at `i` (which must
 *  point at `open`). Returns the index one past the closer, or npos. */
std::size_t
skipBalanced(const std::string &text, std::size_t i, char open, char close)
{
    int depth = 0;
    const std::size_t n = text.size();
    for (; i < n; ++i) {
        if (text[i] == open)
            ++depth;
        else if (text[i] == close && --depth == 0)
            return i + 1;
    }
    return std::string::npos;
}

std::size_t
skipWs(const std::string &text, std::size_t i)
{
    const std::size_t n = text.size();
    while (i < n && std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
    return i;
}

/** Read the identifier ending just before `end` (exclusive), walking
 *  backwards; returns "" when the preceding token is not an ident. */
std::string
identBefore(const std::string &text, std::size_t end)
{
    std::size_t j = end;
    while (j > 0 && std::isspace(static_cast<unsigned char>(text[j - 1])))
        --j;
    std::size_t k = j;
    while (k > 0 && isIdentChar(text[k - 1]))
        --k;
    if (k == j)
        return "";
    return text.substr(k, j - k);
}

struct ParsedFile
{
    std::string path;
    std::vector<std::string> rawLines;
    std::vector<std::string> strippedLines;
    /** Stripped + preprocessor-blanked whole-file text. */
    std::string code;
};

/**
 * Trailing-token walk after a candidate's parameter list. Returns the
 * index of the body's `{` when the candidate is a definition, npos
 * otherwise (declaration, variable, macro invocation, ...).
 */
std::size_t
findBodyBrace(const std::string &text, std::size_t pos)
{
    const std::size_t n = text.size();
    for (;;) {
        pos = skipWs(text, pos);
        if (pos >= n)
            return std::string::npos;
        const char c = text[pos];
        if (c == '{')
            return pos;
        if (c == ';')
            return std::string::npos;
        if (isIdentStart(c)) {
            // const / noexcept / override / final / mutable / an
            // attribute-like macro — any ident, optionally followed by
            // a balanced `(...)` group (e.g. noexcept(...), ERC_...).
            std::size_t j = pos;
            while (j < n && isIdentChar(text[j]))
                ++j;
            pos = skipWs(text, j);
            if (pos < n && text[pos] == '(') {
                pos = skipBalanced(text, pos, '(', ')');
                if (pos == std::string::npos)
                    return std::string::npos;
            }
            continue;
        }
        if (c == '-' && pos + 1 < n && text[pos + 1] == '>') {
            // Trailing return type: scan to `{` or `;` at paren depth 0.
            int depth = 0;
            for (std::size_t j = pos + 2; j < n; ++j) {
                const char d = text[j];
                if (d == '(')
                    ++depth;
                else if (d == ')')
                    --depth;
                else if (depth == 0 && d == '{')
                    return j;
                else if (depth == 0 && d == ';')
                    return std::string::npos;
            }
            return std::string::npos;
        }
        if (c == ':' && (pos + 1 >= n || text[pos + 1] != ':')) {
            // Constructor initializer list:
            //   : member(expr), Base{...}, other(x) {
            std::size_t j = pos + 1;
            for (;;) {
                j = skipWs(text, j);
                if (j >= n || !isIdentStart(text[j]))
                    return std::string::npos;
                while (j < n && isIdentChar(text[j]))
                    ++j;
                // Qualified base (Ns::Base) or template args.
                while (j + 1 < n && text[j] == ':' && text[j + 1] == ':') {
                    j = skipWs(text, j + 2);
                    while (j < n && isIdentChar(text[j]))
                        ++j;
                }
                j = skipWs(text, j);
                if (j < n && text[j] == '<') {
                    j = skipBalanced(text, j, '<', '>');
                    if (j == std::string::npos)
                        return std::string::npos;
                    j = skipWs(text, j);
                }
                if (j >= n || (text[j] != '(' && text[j] != '{'))
                    return std::string::npos;
                j = text[j] == '('
                        ? skipBalanced(text, j, '(', ')')
                        : skipBalanced(text, j, '{', '}');
                if (j == std::string::npos)
                    return std::string::npos;
                j = skipWs(text, j);
                if (j < n && text[j] == ',') {
                    ++j;
                    continue;
                }
                break;
            }
            j = skipWs(text, j);
            if (j < n && text[j] == '{')
                return j;
            return std::string::npos;
        }
        // `= default`, `= delete`, `= 0`, an initializer, or anything
        // else: not a function definition.
        return std::string::npos;
    }
}

/** Qualified spelling of the identifier ending at `identEnd`
 *  (exclusive): walks back over `Ns::Class::` prefixes. */
std::string
qualifiedName(const std::string &text, std::size_t identBegin,
              std::size_t identEnd)
{
    std::size_t k = identBegin;
    for (;;) {
        std::size_t j = k;
        while (j > 0 && std::isspace(static_cast<unsigned char>(text[j - 1])))
            --j;
        if (j < 2 || text[j - 1] != ':' || text[j - 2] != ':')
            break;
        j -= 2;
        while (j > 0 && std::isspace(static_cast<unsigned char>(text[j - 1])))
            --j;
        // Skip template args on the qualifier (Tpl<T>::f).
        if (j > 0 && text[j - 1] == '>') {
            int depth = 0;
            while (j > 0) {
                --j;
                if (text[j] == '>')
                    ++depth;
                else if (text[j] == '<' && --depth == 0)
                    break;
            }
            while (j > 0 &&
                   std::isspace(static_cast<unsigned char>(text[j - 1])))
                --j;
        }
        std::size_t m = j;
        while (m > 0 && isIdentChar(text[m - 1]))
            --m;
        if (m == j)
            break;
        k = m;
    }
    std::string out = text.substr(k, identEnd - k);
    out.erase(std::remove_if(out.begin(), out.end(),
                             [](char c) {
                                 return std::isspace(
                                     static_cast<unsigned char>(c));
                             }),
              out.end());
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** One lexical violation rule. */
struct Rule
{
    const char *kind;
    std::regex pattern;
};

const std::vector<Rule> &
rules()
{
    static const std::vector<Rule> kRules = [] {
        std::vector<Rule> r;
        r.push_back({"heap-alloc",
                     std::regex(R"(\bnew\b|\bmake_unique\b|\bmake_shared\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\()")});
        r.push_back({"container-growth",
                     std::regex(R"((\.|->)\s*(push_back|emplace_back|push_front|emplace_front|resize|reserve|insert|emplace)\s*\()")});
        r.push_back({"string-alloc",
                     std::regex(R"(\bto_string\s*\(|\bstd\s*::\s*string\s*[({]|\bostringstream\b|\bstringstream\b)")});
        r.push_back({"blocking-io",
                     std::regex(R"(\bstd\s*::\s*(cout|cerr|clog|cin)\b|\b(printf|fprintf|fputs|fwrite|fread|fopen)\s*\(|\bifstream\b|\bofstream\b|\bfstream\b|\bgetline\s*\()")});
        r.push_back({"throw", std::regex(R"(\bthrow\b)")});
        r.push_back({"mutex-lock",
                     std::regex(R"(\block_guard\b|\bunique_lock\b|\bscoped_lock\b|(\.|->)\s*lock\s*\()")});
        return r;
    }();
    return kRules;
}

/** True for files exempt from the mutex-lock rule (the blessed
 *  concurrency module: its queues must block). */
bool
isRuntimeFile(const std::string &path)
{
    return path.find("src/elasticrec/runtime/") != std::string::npos ||
           path.rfind("elasticrec/runtime/", 0) == 0 ||
           path.rfind("runtime/", 0) == 0;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream oss;
                oss << "\\u00" << std::hex << (c < 16 ? "0" : "")
                    << static_cast<int>(c);
                out += oss.str();
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

std::vector<FunctionDef>
extractFunctions(const std::string &path, const std::string &content)
{
    const std::string code =
        blankPreprocessorLines(lint::stripCommentsAndStrings(content));
    std::vector<FunctionDef> defs;
    const std::size_t n = code.size();
    std::size_t i = 0;
    while (i < n) {
        if (!isIdentStart(code[i])) {
            ++i;
            continue;
        }
        std::size_t j = i;
        while (j < n && isIdentChar(code[j]))
            ++j;
        std::string word = code.substr(i, j - i);
        std::size_t identBegin = i;
        std::size_t identEnd = j;
        std::size_t probe = skipWs(code, j);

        if (word == "operator") {
            // Consume the operator symbol (or conversion type) up to
            // the parameter list so the body is skipped as a unit.
            std::size_t k = probe;
            if (k + 1 < n && code[k] == '(' && code[k + 1] == ')')
                k = skipWs(code, k + 2); // operator()
            else
                while (k < n && code[k] != '(' && code[k] != ';' &&
                       code[k] != '{')
                    ++k;
            if (k >= n || code[k] != '(') {
                i = j;
                continue;
            }
            word = "operator";
            identEnd = j;
            probe = k;
        } else if (probe >= n || code[probe] != '(' ||
                   keywordSet().count(word) != 0) {
            i = j;
            continue;
        }

        const std::size_t after_params =
            skipBalanced(code, probe, '(', ')');
        if (after_params == std::string::npos) {
            i = j;
            continue;
        }
        const std::size_t brace = findBodyBrace(code, after_params);
        if (brace == std::string::npos) {
            i = j;
            continue;
        }
        const std::size_t after_body = skipBalanced(code, brace, '{', '}');
        if (after_body == std::string::npos) {
            i = j;
            continue;
        }
        FunctionDef def;
        def.name = word;
        def.display = word == "operator"
                          ? "operator"
                          : qualifiedName(code, identBegin, identEnd);
        def.file = path;
        def.line = lineOf(code, identBegin);
        def.bodyBeginLine = lineOf(code, brace);
        def.bodyEndLine = lineOf(code, after_body - 1);
        defs.push_back(std::move(def));
        i = after_body;
    }
    return defs;
}

Analysis
analyze(const FileSet &files)
{
    Analysis analysis;
    analysis.fileCount = files.size();

    // ---- Per-file parse: strip, blank preprocessor, extract. ----
    std::vector<ParsedFile> parsed;
    struct Node
    {
        FunctionDef def;
        std::size_t fileIndex = 0;
        std::vector<std::size_t> callees; // node indices
        /** Lines inside the body suppressed by a line-level ALLOW. */
        std::set<int> allowLines;
    };
    std::vector<Node> nodes;
    std::map<std::string, std::vector<std::size_t>> byName;

    static const std::regex kAllow(
        R"(ERC_HOT_PATH_ALLOW\(\s*\")");
    static const std::regex kRoot(R"(\bERC_HOT_PATH\b)");

    std::set<std::string> rootNames;

    for (const auto &[path, content] : files) {
        ParsedFile pf;
        pf.path = path;
        pf.rawLines = splitLines(content);
        pf.code = blankPreprocessorLines(
            lint::stripCommentsAndStrings(content));
        pf.strippedLines = splitLines(pf.code);

        // Function extraction (re-runs the pipeline; cheap enough).
        const std::size_t first_node = nodes.size();
        for (auto &def : extractFunctions(path, content)) {
            Node node;
            node.def = def;
            node.fileIndex = parsed.size();
            byName[def.name].push_back(nodes.size());
            nodes.push_back(std::move(node));
        }

        // ALLOW markers come from the RAW lines, so trailing-comment
        // placement works (comments are blanked in the stripped text).
        std::vector<int> allow_lines;
        for (std::size_t li = 0; li < pf.rawLines.size(); ++li)
            if (std::regex_search(pf.rawLines[li], kAllow))
                allow_lines.push_back(static_cast<int>(li) + 1);

        for (const int al : allow_lines) {
            bool inside = false;
            for (std::size_t ni = first_node; ni < nodes.size(); ++ni) {
                Node &node = nodes[ni];
                if (al >= node.def.bodyBeginLine &&
                    al <= node.def.bodyEndLine) {
                    node.allowLines.insert(al);
                    node.allowLines.insert(al + 1);
                    inside = true;
                    break;
                }
            }
            if (inside)
                continue;
            // Function-level ALLOW: exempt the next definition.
            for (std::size_t ni = first_node; ni < nodes.size(); ++ni) {
                if (nodes[ni].def.bodyBeginLine > al) {
                    nodes[ni].def.exempt = true;
                    break;
                }
            }
        }

        // Hot roots: ERC_HOT_PATH annotates the next declarator — the
        // identifier directly before the following `(`.
        for (std::size_t li = 0; li < pf.strippedLines.size(); ++li) {
            if (!std::regex_search(pf.strippedLines[li], kRoot))
                continue;
            // Scan forward (same or later lines) for the next `(`.
            std::smatch m;
            std::regex_search(pf.strippedLines[li], m, kRoot);
            std::size_t col =
                static_cast<std::size_t>(m.position(0) + m.length(0));
            for (std::size_t lj = li; lj < pf.strippedLines.size(); ++lj) {
                const std::string &line = pf.strippedLines[lj];
                const std::size_t start = lj == li ? col : 0;
                const std::size_t paren = line.find('(', start);
                if (paren == std::string::npos)
                    continue;
                const std::string name = identBefore(line, paren);
                if (!name.empty() && keywordSet().count(name) == 0)
                    rootNames.insert(name);
                break;
            }
        }

        parsed.push_back(std::move(pf));
    }
    analysis.functionCount = nodes.size();
    analysis.rootCount = rootNames.size();

    // ---- Call graph: callee base names matched against defs. ----
    static const std::regex kCall(R"(([A-Za-z_][A-Za-z0-9_]*)\s*\()");
    for (auto &node : nodes) {
        const ParsedFile &pf = parsed[node.fileIndex];
        std::set<std::size_t> callees;
        for (int li = node.def.bodyBeginLine;
             li <= node.def.bodyEndLine &&
             li <= static_cast<int>(pf.strippedLines.size());
             ++li) {
            const std::string &line =
                pf.strippedLines[static_cast<std::size_t>(li - 1)];
            for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                                kCall);
                 it != std::sregex_iterator(); ++it) {
                const std::string callee = (*it)[1].str();
                if (keywordSet().count(callee) != 0)
                    continue;
                const auto found = byName.find(callee);
                if (found == byName.end())
                    continue;
                for (const std::size_t target : found->second)
                    callees.insert(target);
            }
        }
        node.callees.assign(callees.begin(), callees.end());
    }

    // ---- Multi-source BFS with parent pointers for call paths. ----
    std::vector<std::size_t> parent(nodes.size(),
                                    std::numeric_limits<std::size_t>::max());
    std::vector<std::size_t> rootOf(nodes.size(),
                                    std::numeric_limits<std::size_t>::max());
    std::vector<bool> visited(nodes.size(), false);
    std::queue<std::size_t> frontier;
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
        if (rootNames.count(nodes[ni].def.name) == 0)
            continue;
        if (nodes[ni].def.exempt)
            continue;
        visited[ni] = true;
        rootOf[ni] = ni;
        frontier.push(ni);
    }
    while (!frontier.empty()) {
        const std::size_t ni = frontier.front();
        frontier.pop();
        for (const std::size_t callee : nodes[ni].callees) {
            if (visited[callee] || nodes[callee].def.exempt)
                continue;
            visited[callee] = true;
            parent[callee] = ni;
            rootOf[callee] = rootOf[ni];
            frontier.push(callee);
        }
    }
    analysis.reachableCount = static_cast<std::size_t>(
        std::count(visited.begin(), visited.end(), true));

    // ---- Scan every reachable body for violations. ----
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
        if (!visited[ni])
            continue;
        const Node &node = nodes[ni];
        const ParsedFile &pf = parsed[node.fileIndex];
        const bool runtime_file = isRuntimeFile(pf.path);

        std::vector<std::string> chain;
        for (std::size_t cur = ni;
             cur != std::numeric_limits<std::size_t>::max();
             cur = parent[cur])
            chain.push_back(nodes[cur].def.display);
        std::reverse(chain.begin(), chain.end());
        const std::string root_name =
            nodes[rootOf[ni]].def.display;

        for (int li = node.def.bodyBeginLine;
             li <= node.def.bodyEndLine &&
             li <= static_cast<int>(pf.strippedLines.size());
             ++li) {
            if (node.allowLines.count(li) != 0)
                continue;
            const std::string &line =
                pf.strippedLines[static_cast<std::size_t>(li - 1)];
            for (const Rule &rule : rules()) {
                if (runtime_file &&
                    std::string(rule.kind) == "mutex-lock")
                    continue;
                if (!std::regex_search(line, rule.pattern))
                    continue;
                Violation v;
                v.kind = rule.kind;
                v.file = pf.path;
                v.line = li;
                v.function = node.def.display;
                v.root = root_name;
                v.path = chain;
                const std::size_t raw_index =
                    static_cast<std::size_t>(li - 1);
                v.message = raw_index < pf.rawLines.size()
                                ? trim(pf.rawLines[raw_index])
                                : trim(line);
                analysis.violations.push_back(std::move(v));
            }
        }
    }

    std::sort(analysis.violations.begin(), analysis.violations.end(),
              [](const Violation &a, const Violation &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.kind < b.kind;
              });
    return analysis;
}

std::string
renderText(const Analysis &analysis)
{
    std::ostringstream oss;
    for (const Violation &v : analysis.violations) {
        oss << v.file << ":" << v.line << ": [" << v.kind << "] "
            << v.message << "\n";
        oss << "    in " << v.function << ", reached via ";
        for (std::size_t i = 0; i < v.path.size(); ++i)
            oss << (i == 0 ? "" : " -> ") << v.path[i];
        oss << "\n";
    }
    oss << "erec_hotpath: " << analysis.fileCount << " files, "
        << analysis.functionCount << " functions, " << analysis.rootCount
        << " hot roots, " << analysis.reachableCount << " reachable, "
        << analysis.violations.size() << " violation"
        << (analysis.violations.size() == 1 ? "" : "s") << ": "
        << (analysis.pass() ? "PASS" : "FAIL") << "\n";
    return oss.str();
}

std::string
renderJson(const Analysis &analysis)
{
    std::ostringstream oss;
    oss << "{\n";
    oss << "  \"schema\": \"erec_hotpath/v1\",\n";
    oss << "  \"files\": " << analysis.fileCount << ",\n";
    oss << "  \"functions\": " << analysis.functionCount << ",\n";
    oss << "  \"roots\": " << analysis.rootCount << ",\n";
    oss << "  \"reachable\": " << analysis.reachableCount << ",\n";
    oss << "  \"pass\": " << (analysis.pass() ? "true" : "false") << ",\n";
    oss << "  \"violations\": [";
    for (std::size_t i = 0; i < analysis.violations.size(); ++i) {
        const Violation &v = analysis.violations[i];
        oss << (i == 0 ? "\n" : ",\n");
        oss << "    {\n";
        oss << "      \"kind\": \"" << jsonEscape(v.kind) << "\",\n";
        oss << "      \"file\": \"" << jsonEscape(v.file) << "\",\n";
        oss << "      \"line\": " << v.line << ",\n";
        oss << "      \"function\": \"" << jsonEscape(v.function)
            << "\",\n";
        oss << "      \"root\": \"" << jsonEscape(v.root) << "\",\n";
        oss << "      \"path\": [";
        for (std::size_t j = 0; j < v.path.size(); ++j)
            oss << (j == 0 ? "" : ", ") << "\"" << jsonEscape(v.path[j])
                << "\"";
        oss << "],\n";
        oss << "      \"message\": \"" << jsonEscape(v.message) << "\"\n";
        oss << "    }";
    }
    oss << (analysis.violations.empty() ? "]\n" : "\n  ]\n");
    oss << "}\n";
    return oss.str();
}

} // namespace erec::hotpath
