#pragma once

/**
 * @file
 * Engine of the hot-path discipline gate (`erec_hotpath`): a
 * dependency-free static pass that keeps the steady-state serving path
 * free of per-query heap churn, blocking I/O and surprise locking
 * (DESIGN.md §10).
 *
 * Functions annotated with ERC_HOT_PATH (common/hotpath.h) are the hot
 * roots. The engine tokenizes the first-party tree with the linter's
 * comment/string stripper, extracts every function definition plus an
 * intra-repo call graph (callee base names matched against extracted
 * definitions), and scans every function transitively reachable from a
 * root for:
 *
 *  - heap-alloc: `new`, make_unique/make_shared, malloc/calloc/realloc.
 *  - container-growth: push_back / emplace_back / push_front /
 *    emplace_front / resize / reserve / insert / emplace member calls
 *    (assign() is deliberately exempt — it reuses capacity).
 *  - string-alloc: std::to_string, std::string construction,
 *    ostringstream / stringstream.
 *  - blocking-io: std::cout/cerr/clog/cin, printf-family and C file
 *    APIs, ifstream/ofstream/fstream, getline.
 *  - throw: any `throw` expression (hot paths report via status, not
 *    exceptions; ERC_CHECK sits behind an unexpanded macro and is the
 *    blessed precondition mechanism).
 *  - mutex-lock: lock_guard / unique_lock / scoped_lock construction
 *    or a non-try .lock() call. Files under src/elasticrec/runtime/
 *    are exempt from this rule only — the blessed queues must lock,
 *    and their waits are annotated with AllocGate regions instead.
 *
 * Intentional, amortised allocations are waived in place with
 * ERC_HOT_PATH_ALLOW("reason"): on (or on the line directly above) a
 * statement inside a body it suppresses that line; outside any body it
 * exempts the next function definition entirely and stops traversal
 * into it. Markers are collected from the RAW text, so a trailing
 * `// ERC_HOT_PATH_ALLOW("...")` comment works.
 *
 * The pass is deliberately lexical: macros are not expanded (so
 * ERC_CHECK creates no edges), callees resolve by base name (so one
 * annotated `serve` makes every `serve` definition a root — an
 * over-approximation that errs toward scanning more), and bodies the
 * extractor cannot parse (e.g. operator() definitions) are skipped as
 * units. The complementary *dynamic* check, common/alloc_tracker.h,
 * counts real allocations inside AllocGate regions at run time; the
 * two together gate `allocs_per_query` to exactly zero in CI.
 *
 * The engine works on an in-memory FileSet (repo-relative path ->
 * content) so tests can drive it without touching the filesystem; the
 * CLI (hotpath_main.cc) walks the real tree. Exit codes follow the
 * benchdiff convention: 0 = clean, 1 = violations, 2 = usage error.
 */

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace erec::hotpath {

/** Repo-relative path -> file content. */
using FileSet = std::map<std::string, std::string>;

/** One hot-path violation at a source location. */
struct Violation
{
    /** "heap-alloc", "container-growth", "string-alloc",
     *  "blocking-io", "throw" or "mutex-lock". */
    std::string kind;
    std::string file;
    int line = 0;
    /** Base name of the containing function. */
    std::string function;
    /** The ERC_HOT_PATH root this function is reachable from. */
    std::string root;
    /** Concrete call chain, root first, containing function last. */
    std::vector<std::string> path;
    /** The offending source line (raw text, trimmed). */
    std::string message;
};

/** One extracted function definition (exposed for tests). */
struct FunctionDef
{
    /** Base name (after the last `::`). */
    std::string name;
    /** Name as written, e.g. "DenseShardServer::serve". */
    std::string display;
    std::string file;
    /** 1-based line of the function's identifier. */
    int line = 0;
    /** 1-based inclusive line span of the `{...}` body. */
    int bodyBeginLine = 0;
    int bodyEndLine = 0;
    /** True when a function-level ERC_HOT_PATH_ALLOW exempts it. */
    bool exempt = false;
};

/** Full analysis result. */
struct Analysis
{
    std::size_t fileCount = 0;
    std::size_t functionCount = 0;
    /** Distinct ERC_HOT_PATH-annotated root names. */
    std::size_t rootCount = 0;
    /** Function definitions reachable from any root. */
    std::size_t reachableCount = 0;
    std::vector<Violation> violations;

    bool pass() const { return violations.empty(); }
};

/**
 * Extract every function definition from one file's content (exposed
 * so tests can pin the extractor's grammar: trailing const/noexcept/
 * attribute macros, trailing return types, ctor init lists, bodies
 * skipped as units so nested lambdas attribute to their enclosing
 * function).
 */
std::vector<FunctionDef> extractFunctions(const std::string &path,
                                          const std::string &content);

/**
 * Blank preprocessor directives (including `\` continuations) in
 * already-stripped text, preserving newlines. Exposed so erec_conclint
 * can reuse the exact strip -> blank -> extract pipeline the hotpath
 * pass runs; diverging copies would make the two gates disagree on
 * what counts as code.
 */
std::string blankPreprocessorLines(const std::string &stripped);

/** Run the full pass over a file set. */
Analysis analyze(const FileSet &files);

/** "file:line: [kind] message" lines plus a PASS/FAIL summary. */
std::string renderText(const Analysis &analysis);

/** Deterministic JSON document (schema erec_hotpath/v1). */
std::string renderJson(const Analysis &analysis);

} // namespace erec::hotpath
