/**
 * @file
 * CLI of the hot-path discipline gate:
 *
 *     erec_hotpath --root src [--root <dir>...] [--format text|json]
 *
 * Walks the given roots (relative to the current directory, which
 * should be the repo root so paths in reports are repo-relative),
 * extracts ERC_HOT_PATH roots plus the intra-repo call graph, and
 * flags allocation / blocking-I/O / throw / lock patterns in every
 * transitively reachable function (tools/hotpath/hotpath_core.h).
 * Exit codes follow the benchdiff convention: 0 = clean,
 * 1 = violations, 2 = usage error. CI runs `--format json` and
 * uploads the document as an artifact.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/hotpath/hotpath_core.h"

namespace fs = std::filesystem;

namespace {

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        std::cerr << "erec_hotpath: cannot read " << path << "\n";
        std::exit(2);
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

bool
isCxxFile(const fs::path &path)
{
    const auto ext = path.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".h" || ext == ".hpp";
}

void
usage()
{
    std::cerr << "usage: erec_hotpath --root <dir> [--root <dir>...]"
                 " [--format text|json]\n";
    std::exit(2);
}

/** Repo-relative spelling of a scanned path ("./src/x" -> "src/x"). */
std::string
repoRelative(const fs::path &path)
{
    std::string out = path.generic_string();
    while (out.rfind("./", 0) == 0)
        out = out.substr(2);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    std::string format = "text";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            roots.push_back(argv[++i]);
        } else if (arg == "--format" && i + 1 < argc) {
            format = argv[++i];
        } else {
            usage();
        }
    }
    if (roots.empty() || (format != "text" && format != "json"))
        usage();

    erec::hotpath::FileSet files;
    for (const auto &root : roots) {
        if (fs::is_regular_file(root)) {
            files[repoRelative(root)] = readFile(root);
            continue;
        }
        if (!fs::is_directory(root)) {
            std::cerr << "erec_hotpath: no such file or directory: "
                      << root << "\n";
            return 2;
        }
        for (const auto &entry : fs::recursive_directory_iterator(root)) {
            if (entry.is_regular_file() && isCxxFile(entry.path()))
                files[repoRelative(entry.path())] = readFile(entry.path());
        }
    }

    const auto analysis = erec::hotpath::analyze(files);
    if (format == "json") {
        std::cout << erec::hotpath::renderJson(analysis);
    } else {
        (analysis.pass() ? std::cout : std::cerr)
            << erec::hotpath::renderText(analysis);
    }
    return analysis.pass() ? 0 : 1;
}
