#include "tools/benchdiff/benchdiff_core.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "elasticrec/common/error.h"

namespace erec::benchdiff {

namespace {

/** Recursive-descent JSON reader over a string (no third-party deps).
 *  Tracks the byte offset for error messages. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        ERC_CHECK(pos_ == text_.size(),
                  "trailing garbage after JSON document at byte "
                      << pos_);
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        erec::fatal("JSON parse error at byte " +
                    std::to_string(pos_) + ": " + what);
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 text_[pos_] + "'");
        ++pos_;
    }

    bool consumeKeyword(const std::string &kw)
    {
        if (text_.compare(pos_, kw.size(), kw) != 0)
            return false;
        pos_ += kw.size();
        return true;
    }

    JsonValue parseValue()
    {
        const char c = peek();
        switch (c) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.string = parseString();
            return v;
        }
        case 't':
        case 'f': {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            if (consumeKeyword("true"))
                v.boolean = true;
            else if (consumeKeyword("false"))
                v.boolean = false;
            else
                fail("bad keyword");
            return v;
        }
        case 'n': {
            if (!consumeKeyword("null"))
                fail("bad keyword");
            return JsonValue{};
        }
        default:
            return parseNumber();
        }
    }

    JsonValue parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            if (peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            expect(':');
            v.object.emplace_back(std::move(key), parseValue());
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                case '"':
                case '\\':
                case '/':
                    out.push_back(e);
                    break;
                case 'n':
                    out.push_back('\n');
                    break;
                case 't':
                    out.push_back('\t');
                    break;
                case 'r':
                    out.push_back('\r');
                    break;
                case 'b':
                case 'f':
                case 'u':
                    // Bench files never emit these; keep the reader
                    // honest rather than silently mangling them.
                    fail("unsupported string escape");
                default:
                    fail("bad string escape");
                }
                continue;
            }
            out.push_back(c);
        }
    }

    JsonValue parseNumber()
    {
        skipWs();
        const std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double num = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            fail("bad number '" + token + "'");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = num;
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Fetch a required numeric member of a sweep entry. */
double
numberField(const JsonValue &entry, const std::string &key)
{
    const JsonValue *v = entry.find(key);
    ERC_CHECK(v != nullptr && v->kind == JsonValue::Kind::Number,
              "sweep entry lacks numeric \"" << key << "\"");
    return v->number;
}

/** Extract {key value -> entry} from a bench document's "sweep" array.
 *  Pointers alias the document, which outlives the comparison. */
std::map<std::size_t, const JsonValue *>
sweepEntries(const JsonValue &doc, const std::string &which,
             const std::string &key)
{
    const JsonValue *sweep = doc.find("sweep");
    ERC_CHECK(sweep != nullptr &&
                  sweep->kind == JsonValue::Kind::Array &&
                  !sweep->array.empty(),
              which << " bench file has no non-empty \"sweep\" array");
    std::map<std::size_t, const JsonValue *> out;
    for (const JsonValue &entry : sweep->array) {
        ERC_CHECK(entry.kind == JsonValue::Kind::Object,
                  which << " sweep entries must be objects");
        const auto value =
            static_cast<std::size_t>(numberField(entry, key));
        ERC_CHECK(out.find(value) == out.end(),
                  which << " sweep lists " << key << "=" << value
                        << " twice");
        out[value] = &entry;
        (void)numberField(entry, "qps"); // Schema check up front.
    }
    return out;
}

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parseDocument();
}

double
parseTolerance(const std::string &arg)
{
    ERC_CHECK(!arg.empty(), "empty tolerance");
    std::string num = arg;
    double scale = 1.0;
    if (num.back() == '%') {
        num.pop_back();
        scale = 0.01;
    }
    char *end = nullptr;
    const double v = std::strtod(num.c_str(), &end) * scale;
    ERC_CHECK(end == num.c_str() + num.size(),
              "bad tolerance '" << arg
                                << "' (want e.g. \"15%\" or \"0.15\")");
    ERC_CHECK(v >= 0.0 && v < 1.0,
              "tolerance must be in [0, 1), got " << v);
    return v;
}

std::pair<std::string, double>
parseMetricTolerance(const std::string &arg)
{
    const std::size_t eq = arg.find('=');
    ERC_CHECK(eq != std::string::npos && eq > 0,
              "bad metric tolerance '"
                  << arg << "' (want e.g. \"allocs_per_query=0\")");
    return {arg.substr(0, eq), parseTolerance(arg.substr(eq + 1))};
}

DiffReport
compare(const JsonValue &baseline, const JsonValue &current,
        double tolerance, const MetricTolerances &metric_tolerances,
        const std::string &key)
{
    const auto base = sweepEntries(baseline, "baseline", key);
    const auto cur = sweepEntries(current, "current", key);

    DiffReport report;
    report.tolerance = tolerance;
    report.keyName = key;
    for (const auto &[key_value, base_entry] : base) {
        PointDiff p;
        p.keyValue = key_value;
        p.baselineQps = numberField(*base_entry, "qps");
        const auto it = cur.find(key_value);
        if (it == cur.end()) {
            p.missing = true;
            p.regressed = true;
        } else {
            p.currentQps = numberField(*it->second, "qps");
            p.ratio =
                p.baselineQps > 0.0 ? p.currentQps / p.baselineQps : 0.0;
            p.regressed =
                p.currentQps < p.baselineQps * (1.0 - tolerance);
        }
        // Overridden metrics are lower-is-better: the baseline is a
        // ceiling, so a zero baseline with zero tolerance demands an
        // exact zero.
        for (const auto &[name, metric_tol] : metric_tolerances) {
            MetricDiff m;
            m.name = name;
            m.tolerance = metric_tol;
            const JsonValue *base_v = base_entry->find(name);
            ERC_CHECK(base_v != nullptr &&
                          base_v->kind == JsonValue::Kind::Number,
                      "baseline sweep entry (" << key << "="
                          << key_value << ") lacks numeric \"" << name
                          << "\" named by --metric-tolerance");
            m.baseline = base_v->number;
            const JsonValue *cur_v =
                it == cur.end() ? nullptr : it->second->find(name);
            if (cur_v == nullptr ||
                cur_v->kind != JsonValue::Kind::Number) {
                m.missing = true;
                m.regressed = true;
            } else {
                m.current = cur_v->number;
                m.regressed =
                    m.current > m.baseline * (1.0 + metric_tol);
            }
            p.regressed = p.regressed || m.regressed;
            p.metrics.push_back(std::move(m));
        }
        report.pass = report.pass && !p.regressed;
        report.points.push_back(std::move(p));
    }
    return report;
}

std::string
formatReport(const DiffReport &report)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(1);
    for (const PointDiff &p : report.points) {
        out << report.keyName << "=" << p.keyValue << ": baseline "
            << p.baselineQps << " qps";
        if (p.missing) {
            out << ", MISSING from current run -> FAIL\n";
            continue;
        }
        const bool qps_regressed =
            p.currentQps < p.baselineQps * (1.0 - report.tolerance);
        out << ", current " << p.currentQps << " qps ("
            << p.ratio * 100.0 << "% of baseline) -> "
            << (qps_regressed ? "REGRESSED" : "ok") << "\n";
        for (const MetricDiff &m : p.metrics) {
            out << "    " << m.name << ": baseline " << m.baseline;
            if (m.missing) {
                out << ", MISSING from current entry -> FAIL\n";
                continue;
            }
            out << ", current " << m.current << " (tolerance "
                << m.tolerance * 100.0 << "%) -> "
                << (m.regressed ? "REGRESSED" : "ok") << "\n";
        }
    }
    out << "benchdiff: "
        << (report.pass ? "PASS" : "FAIL (regression beyond ")
        << (report.pass ? ""
                        : std::to_string(static_cast<int>(
                              report.tolerance * 100.0 + 0.5)) +
                              "% QPS tolerance or a metric override)")
        << "\n";
    return out.str();
}

} // namespace erec::benchdiff
