#pragma once

/**
 * @file
 * Core of the perf-regression gate (`erec_benchdiff`): parses two
 * BENCH_*.json files emitted by the bench harnesses and compares the
 * current run's QPS against the checked-in baseline, sweep point by
 * sweep point. Points are matched on a numeric sweep key — "threads"
 * by default (the serving bench), or any other member via `--key`
 * (the kernel bench matches on "point" ids). "qps" stays the rate
 * field name whatever the unit (the kernel bench stores GB/s and
 * GFLOP/s in it); the gate only compares ratios.
 *
 * A point regresses when current_qps < baseline_qps * (1 - tolerance).
 * Faster-than-baseline runs always pass — the gate only guards the
 * floor, so baselines can stay conservative enough to hold across CI
 * machine generations.
 *
 * Beyond QPS, per-metric tolerance overrides (CLI:
 * `--metric-tolerance name=value`, repeatable) gate additional
 * *lower-is-better* sweep metrics: every baseline entry carrying the
 * metric must be matched by current_value <= baseline_value *
 * (1 + tolerance), so `--metric-tolerance allocs_per_query=0` against
 * a baseline of 0 demands an exact zero. A baseline entry lacking an
 * overridden metric is a config error (the override names a metric the
 * baseline does not publish); a current entry lacking it fails the
 * gate.
 *
 * Parsing is a self-contained recursive-descent JSON reader (the repo
 * takes no third-party deps); it accepts general JSON, and compare()
 * then requires the bench schema: a top-level object with a "sweep"
 * array of objects carrying numeric "qps" and the sweep key.
 */

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace erec::benchdiff {

/** Minimal JSON value (objects keep insertion order via vector). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Object member lookup; null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/** Parse a JSON document. Raises erec::ConfigError on malformed input
 *  (with a byte offset in the message). */
JsonValue parseJson(const std::string &text);

/**
 * Parse a tolerance argument: either a fraction ("0.15") or a
 * percentage ("15%"). Must land in [0, 1). Raises erec::ConfigError.
 */
double parseTolerance(const std::string &arg);

/**
 * Parse a `--metric-tolerance` argument of the form "name=value",
 * where value follows parseTolerance ("0.15" or "15%", [0, 1)).
 * Raises erec::ConfigError on a missing '=', empty name or bad value.
 */
std::pair<std::string, double>
parseMetricTolerance(const std::string &arg);

/** Per-metric tolerance overrides (metric name -> tolerance). */
using MetricTolerances = std::map<std::string, double>;

/** Verdict for one overridden metric at one sweep point. */
struct MetricDiff
{
    std::string name;
    double baseline = 0.0;
    /** Current value; 0 when the metric is missing. */
    double current = 0.0;
    double tolerance = 0.0;
    /** True when the current entry lacks this metric. */
    bool missing = false;
    /** Lower-is-better: current > baseline * (1 + tolerance). */
    bool regressed = false;
};

/** Verdict for one baseline sweep point. */
struct PointDiff
{
    /** Value of the sweep key (threads, point id, ...) at this point. */
    std::size_t keyValue = 0;
    double baselineQps = 0.0;
    /** Current QPS; 0 when the point is missing from the current run. */
    double currentQps = 0.0;
    /** currentQps / baselineQps (0 when missing). */
    double ratio = 0.0;
    /** True when the current run lacks this thread count entirely. */
    bool missing = false;
    bool regressed = false;
    /** One verdict per overridden metric (empty without overrides). */
    std::vector<MetricDiff> metrics;
};

/** Full comparison result. */
struct DiffReport
{
    std::vector<PointDiff> points;
    double tolerance = 0.0;
    /** Sweep member the points were matched on ("threads", ...). */
    std::string keyName = "threads";
    /** True iff no point (QPS or overridden metric) is missing or
     *  regressed. */
    bool pass = true;
};

/**
 * Compare a current bench run against the baseline. Every baseline
 * sweep point must appear in the current run (matched on the numeric
 * `key` member, default "threads") and hold >= (1 - tolerance) of the
 * baseline QPS. Extra points in the current run are ignored — adding
 * sweep coverage is not a regression. Each metric in
 * `metric_tolerances` is additionally gated lower-is-better at every
 * sweep point (see the file comment).
 */
DiffReport compare(const JsonValue &baseline, const JsonValue &current,
                   double tolerance,
                   const MetricTolerances &metric_tolerances = {},
                   const std::string &key = "threads");

/** Human-readable per-point report with a PASS/FAIL trailer. */
std::string formatReport(const DiffReport &report);

} // namespace erec::benchdiff
