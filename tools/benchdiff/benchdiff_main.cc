/**
 * @file
 * CLI of the perf-regression gate:
 *
 *     erec_benchdiff baseline.json current.json [--tolerance 15%]
 *         [--metric-tolerance allocs_per_query=0 ...]
 *         [--key threads]
 *
 * Exit codes: 0 = within tolerance, 1 = regression (or baseline point
 * missing from the current run), 2 = usage / unreadable / malformed
 * input. CI treats non-zero as a failed gate.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/benchdiff/benchdiff_core.h"

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in.good()) {
        std::cerr << "erec_benchdiff: cannot read " << path << "\n";
        std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
usage()
{
    std::cerr << "usage: erec_benchdiff <baseline.json> <current.json>"
                 " [--tolerance 15%|0.15]"
                 " [--metric-tolerance <name>=<tol> ...]"
                 " [--key <sweep member, default threads>]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path, current_path, tolerance_arg = "15%";
    std::string key = "threads";
    std::vector<std::string> metric_args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tolerance" && i + 1 < argc) {
            tolerance_arg = argv[++i];
        } else if (arg == "--metric-tolerance" && i + 1 < argc) {
            metric_args.push_back(argv[++i]);
        } else if (arg == "--key" && i + 1 < argc) {
            key = argv[++i];
        } else if (baseline_path.empty()) {
            baseline_path = arg;
        } else if (current_path.empty()) {
            current_path = arg;
        } else {
            usage();
        }
    }
    if (baseline_path.empty() || current_path.empty())
        usage();

    try {
        const double tolerance =
            erec::benchdiff::parseTolerance(tolerance_arg);
        erec::benchdiff::MetricTolerances metric_tolerances;
        for (const auto &m : metric_args)
            metric_tolerances.insert(
                erec::benchdiff::parseMetricTolerance(m));
        const auto baseline =
            erec::benchdiff::parseJson(readFile(baseline_path));
        const auto current =
            erec::benchdiff::parseJson(readFile(current_path));
        const auto report =
            erec::benchdiff::compare(baseline, current, tolerance,
                                     metric_tolerances, key);
        std::cout << erec::benchdiff::formatReport(report);
        return report.pass ? 0 : 1;
    } catch (const std::exception &e) {
        std::cerr << "erec_benchdiff: " << e.what() << "\n";
        return 2;
    }
}
