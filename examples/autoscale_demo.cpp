/**
 * @file
 * Autoscaling demo: a diurnal-style traffic wave served by ElasticRec
 * and by the model-wise baseline on the CPU-only cluster, with both
 * architectures scaling via the Kubernetes-style HPA. Prints a
 * minute-by-minute console dashboard and a final comparison — a
 * hands-on version of the paper's Figure 19 experiment.
 */

#include <iostream>
#include <string>

#include "elasticrec/common/logging.h"
#include "elasticrec/common/table_printer.h"
#include "elasticrec/core/planner.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/obs/export.h"
#include "elasticrec/sim/cluster_sim.h"
#include "elasticrec/sim/experiment.h"

using namespace erec;

namespace {

workload::TrafficPattern
diurnalWave()
{
    // A compressed day: sleepy morning, lunch spike, evening peak.
    using namespace erec::units;
    return workload::TrafficPattern({
        {0, 15.0},
        {3 * kMinute, 40.0},
        {6 * kMinute, 25.0},
        {9 * kMinute, 80.0},
        {13 * kMinute, 100.0},
        {16 * kMinute, 30.0},
    });
}

void
report(const char *name, const sim::SimResult &r)
{
    std::cout << "\n[" << name << "] minute-by-minute:\n";
    TablePrinter t({"minute", "target", "achieved", "p95 ms",
                    "memory GiB", "replicas", "nodes"});
    const auto &pts = r.targetQps.points();
    for (std::size_t i = 0; i < pts.size(); i += 60) {
        t.addRow({TablePrinter::num(static_cast<std::int64_t>(
                      units::toSeconds(pts[i].first) / 60)),
                  TablePrinter::num(pts[i].second, 0),
                  TablePrinter::num(
                      r.achievedQps.points()[i].second, 1),
                  TablePrinter::num(
                      r.p95LatencyMs.points()[i].second, 1),
                  TablePrinter::num(
                      r.memoryGiB.points()[i].second, 1),
                  TablePrinter::num(static_cast<std::int64_t>(
                      r.readyReplicas.points()[i].second)),
                  TablePrinter::num(static_cast<std::int64_t>(
                      r.nodesInUse.points()[i].second))});
    }
    t.print(std::cout);
    std::cout << "  completed " << r.completed << " queries, "
              << r.slaViolations << " SLA violations ("
              << TablePrinter::percent(
                     static_cast<double>(r.slaViolations) /
                     std::max<std::uint64_t>(1, r.completed))
              << "), peak memory "
              << units::formatBytes(r.peakMemory) << ", peak nodes "
              << r.peakNodes << ", " << r.scaleEvents
              << " scale events\n";
}

void
exportTelemetry(const std::string &dir, const std::string &stem,
                sim::ClusterSimulation &sim)
{
    if (dir.empty())
        return;
    const auto &traces = sim.traces();
    obs::ExportArtifacts artifacts;
    artifacts.traces = traces.empty() ? nullptr : &traces;
    artifacts.alerts = &sim.alertEvents();
    obs::writeMetricsFiles(dir, stem, sim.observability(), artifacts);
    std::cout << "  telemetry: " << dir << "/" << stem << ".prom\n";
}

} // namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    // Optional: `--metrics-out DIR` dumps each run's Prometheus
    // export plus a 1%-sampled query-trace JSON-lines file.
    std::string metrics_dir;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--metrics-out")
            metrics_dir = argv[i + 1];

    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto traffic = diurnalWave();
    const SimTime duration = 20 * units::kMinute;

    std::cout << "Serving " << config.name << " through a compressed "
              << "diurnal traffic wave (" << units::toSeconds(duration) / 60
              << " simulated minutes, SLA 400 ms)...\n";

    core::Planner planner = core::Planner::forPlatform(config, node);
    const auto cdf = sim::cdfFor(config);

    sim::SimOptions opt;
    opt.seed = 99;
    opt.traceSampleEvery = metrics_dir.empty() ? 0 : 100;

    sim::ClusterSimulation er(planner.planElasticRec({cdf}), node,
                              traffic, opt);
    const auto er_result = er.run(duration);
    report("ElasticRec", er_result);
    exportTelemetry(metrics_dir, "autoscale_elasticrec", er);

    sim::ClusterSimulation mw(planner.planModelWise(), node, traffic,
                              opt);
    const auto mw_result = mw.run(duration);
    report("model-wise", mw_result);
    exportTelemetry(metrics_dir, "autoscale_modelwise", mw);

    std::cout << "\nElasticRec vs model-wise: "
              << TablePrinter::ratio(
                     static_cast<double>(mw_result.peakMemory) /
                     std::max<Bytes>(1, er_result.peakMemory))
              << " peak-memory advantage, "
              << mw_result.slaViolations << " -> "
              << er_result.slaViolations << " SLA violations\n";
    return 0;
}
