/**
 * @file
 * Dataset explorer: studies how embedding-access skew shapes the
 * partitioning decision. For each (synthesized) real-world dataset
 * shape — Amazon Books, Criteo, MovieLens — it samples an access
 * stream, reconstructs the empirical CDF through a FrequencyTracker
 * (exactly the production pipeline), runs the DP partitioner, and
 * shows how the chosen shards line up with the hot set.
 */

#include <iostream>

#include "elasticrec/common/logging.h"
#include "elasticrec/common/table_printer.h"
#include "elasticrec/core/planner.h"
#include "elasticrec/embedding/frequency_tracker.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/workload/datasets.h"

using namespace erec;

int
main()
{
    setLogLevel(LogLevel::Warn);
    const auto node = hw::cpuOnlyNode();

    for (const auto &shape : workload::allDatasetShapes()) {
        std::cout << "\n=== " << shape.name << " (" << shape.numRows
                  << " rows, P = "
                  << TablePrinter::percent(shape.localityP) << ") ===\n";

        // Sample an access stream and build the empirical CDF the way
        // a production tracker would.
        Rng rng(31);
        embedding::FrequencyTracker tracker(shape.numRows);
        // Sample several accesses per row on average; with fewer, the
        // empirical top-10% coverage overstates P because unsampled
        // tail rows contribute zero measured mass.
        const std::uint64_t samples = 5 * shape.numRows;
        for (std::uint64_t i = 0; i < samples; ++i) {
            tracker.record(static_cast<std::uint32_t>(
                shape.distribution->sampleRank(rng)));
        }
        auto cdf = std::make_shared<embedding::AccessCdf>(
            tracker.buildCdf(512));
        std::cout << "empirical P (top 10% coverage) over "
                  << samples << " sampled accesses: "
                  << TablePrinter::percent(cdf->localityP())
                  << " (analytic "
                  << TablePrinter::percent(shape.localityP) << ")\n";

        // Partition a model whose tables follow this dataset's shape.
        model::DlrmConfig config = model::rm1();
        config.rowsPerTable = shape.numRows;
        config.localityP = shape.localityP;
        core::Planner planner(config, node);
        const auto plan = planner.partitionTable(*cdf);

        TablePrinter t({"shard", "rows", "row share", "access share"});
        std::uint64_t begin = 0;
        for (std::uint32_t s = 0; s < plan.numShards(); ++s) {
            const auto end = plan.boundaries[s];
            t.addRow(
                {TablePrinter::num(static_cast<std::int64_t>(s)),
                 TablePrinter::num(
                     static_cast<std::int64_t>(end - begin)),
                 TablePrinter::percent(
                     static_cast<double>(end - begin) /
                     static_cast<double>(shape.numRows)),
                 TablePrinter::percent(cdf->massOfRange(begin, end))});
            begin = end;
        }
        t.print(std::cout);
    }
    return 0;
}
