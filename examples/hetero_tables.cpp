/**
 * @file
 * Heterogeneous tables: in production, different sparse features have
 * very different access skew (compare the three datasets of Figure 6).
 * ElasticRec partitions each table separately (Section VI-A: "if a
 * model contains multiple tables, ElasticRec applies its table
 * partitioning algorithm separately for each individual table"). This
 * example gives each table of one model its own locality and shows how
 * the per-table plans — shard counts, boundaries and replica mixes —
 * adapt to each table's skew.
 */

#include <cmath>
#include <iostream>

#include "elasticrec/common/logging.h"
#include "elasticrec/common/table_printer.h"
#include "elasticrec/core/planner.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/sim/experiment.h"

using namespace erec;

int
main()
{
    setLogLevel(LogLevel::Warn);
    const auto node = hw::cpuOnlyNode();

    model::DlrmConfig config = model::rm1();
    config.name = "hetero";
    config.numTables = 6;

    // Per-table locality: from almost uniform to extremely skewed.
    const double locality[] = {0.20, 0.40, 0.60, 0.80, 0.90, 0.97};
    std::vector<std::shared_ptr<const embedding::AccessCdf>> cdfs;
    for (double p : locality) {
        auto dist = std::make_shared<workload::LocalityDistribution>(
            config.rowsPerTable, p);
        cdfs.push_back(std::make_shared<embedding::AccessCdf>(
            embedding::AccessCdf::fromMassFunction(
                config.rowsPerTable,
                [&dist](std::uint64_t x) {
                    return dist->massOfTopRows(x);
                })));
    }

    core::Planner planner(config, node);
    const auto plan = planner.planElasticRec(cdfs);

    std::cout << "Per-table plans (target 100 QPS):\n";
    TablePrinter t({"table", "locality P", "shards", "hot-shard rows",
                    "hot replicas", "cold replicas",
                    "table memory"});
    for (std::uint32_t table = 0; table < config.numTables; ++table) {
        const auto shards = plan.tableShards(table);
        Bytes mem = 0;
        for (const auto *s : shards) {
            mem += Bytes{core::DeploymentPlan::replicasForTarget(
                       *s, 100.0)} *
                   s->memBytes;
        }
        t.addRow({TablePrinter::num(static_cast<std::int64_t>(table)),
                  TablePrinter::percent(locality[table], 0),
                  TablePrinter::num(static_cast<std::int64_t>(
                      shards.size())),
                  TablePrinter::num(static_cast<std::int64_t>(
                      shards.front()->endRow -
                      shards.front()->beginRow)),
                  TablePrinter::num(static_cast<std::int64_t>(
                      core::DeploymentPlan::replicasForTarget(
                          *shards.front(), 100.0))),
                  TablePrinter::num(static_cast<std::int64_t>(
                      core::DeploymentPlan::replicasForTarget(
                          *shards.back(), 100.0))),
                  units::formatBytes(mem)});
    }
    t.print(std::cout);
    std::cout << "(more skew -> smaller, hotter head shards that "
                 "replicate cheaply; near-uniform tables stay coarse)\n";

    // Contrast with one plan derived from an "average" CDF and applied
    // to every table. For a fair comparison the averaged plan's
    // replica counts must be evaluated under each table's *true* load,
    // not the averaged estimate it was planned with.
    auto avg_dist = std::make_shared<workload::LocalityDistribution>(
        config.rowsPerTable, 0.645);
    auto avg_cdf = std::make_shared<embedding::AccessCdf>(
        embedding::AccessCdf::fromMassFunction(
            config.rowsPerTable, [&](std::uint64_t x) {
                return avg_dist->massOfTopRows(x);
            }));
    const auto avg_partition = planner.partitionTable(*avg_cdf);
    const double n_t =
        static_cast<double>(config.gathersPerQueryPerTable());
    const auto qps = planner.sparseQpsModel();
    Bytes avg_mem = 0;
    for (std::uint32_t table = 0; table < config.numTables; ++table) {
        std::uint64_t begin = 0;
        for (auto end : avg_partition.boundaries) {
            const double n_s =
                cdfs[table]->massOfRange(begin, end) * n_t;
            const auto replicas = static_cast<Bytes>(std::max(
                1.0, std::ceil(100.0 / qps->qps(n_s))));
            avg_mem += replicas *
                       ((end - begin) * Bytes{config.embeddingDim} * 4 +
                        planner.options().minMemAlloc);
            begin = end;
        }
    }
    std::cout << "\nsparse memory @100 QPS — per-table plans: "
              << units::formatBytes(plan.memoryForTarget(100.0) -
                                    Bytes{core::DeploymentPlan::
                                              replicasForTarget(
                                                  plan.frontendShard(),
                                                  100.0)} *
                                        plan.frontendShard().memBytes)
              << " vs one averaged plan under the true loads: "
              << units::formatBytes(avg_mem)
              << " (per-table partitioning adapts to each feature's "
                 "skew)\n";
    return 0;
}
