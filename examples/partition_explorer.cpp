/**
 * @file
 * Example: explore ElasticRec's utility-based table partitioning on the
 * paper-scale RM1/RM2/RM3 workloads (Table II).
 *
 * For each workload this prints the profiling-based QPS curve summary,
 * the DP partitioning plan (shard boundaries, expected gathers, QPS and
 * replica counts), and the deployment-memory comparison against the
 * model-wise baseline at the paper's CPU-only fleet target of
 * 100 queries/sec.
 */

#include <iostream>

#include "elasticrec/common/table_printer.h"
#include "elasticrec/core/planner.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/model/dlrm_config.h"
#include "elasticrec/sim/experiment.h"

using namespace erec;

int
main()
{
    const hw::NodeSpec node = hw::cpuOnlyNode();
    const double target_qps = 100.0;

    for (const auto &config : model::tableIIModels()) {
        std::cout << "=== " << config.name << " ("
                  << config.numTables << " tables x "
                  << config.rowsPerTable << " rows, pooling "
                  << config.poolingFactor << ", P="
                  << config.localityP << ") ===\n";

        core::Planner planner(config, node);
        const auto cdf = sim::cdfFor(config);
        const auto er = planner.planElasticRec({cdf});
        const auto mw = planner.planModelWise();

        // Show the per-table partitioning plan (all tables share one
        // access CDF here, so one table is representative).
        TablePrinter shard_table({"shard", "rows", "size", "n_s",
                                  "QPS/replica", "replicas@" +
                                      TablePrinter::num(target_qps, 0)});
        for (const auto *s : er.tableShards(0)) {
            shard_table.addRow(
                {s->name, TablePrinter::num(static_cast<std::int64_t>(
                              s->endRow - s->beginRow)),
                 units::formatBytes(s->memBytes),
                 TablePrinter::num(s->expectedGathers, 1),
                 TablePrinter::num(s->qpsPerReplica, 1),
                 TablePrinter::num(static_cast<std::int64_t>(
                     core::DeploymentPlan::replicasForTarget(
                         *s, target_qps)))});
        }
        shard_table.print(std::cout);

        const auto &dense = er.frontendShard();
        std::cout << "dense shard: QPS/replica="
                  << TablePrinter::num(dense.qpsPerReplica, 1)
                  << ", latency="
                  << units::toMillis(dense.serviceLatency) << " ms, "
                  << "replicas@" << target_qps << "="
                  << core::DeploymentPlan::replicasForTarget(dense,
                                                             target_qps)
                  << "\n";
        const auto &mono = mw.frontendShard();
        std::cout << "model-wise: QPS/replica="
                  << TablePrinter::num(mono.qpsPerReplica, 1)
                  << ", latency="
                  << units::toMillis(mono.serviceLatency)
                  << " ms (dense "
                  << units::toMillis(mono.stageLatencies[0])
                  << " + sparse "
                  << units::toMillis(mono.stageLatencies[1]) << ")\n";

        const auto er_static = sim::evaluateStatic(er, node, target_qps);
        const auto mw_static = sim::evaluateStatic(mw, node, target_qps);
        TablePrinter cmp({"policy", "memory", "replicas", "nodes"});
        for (const auto *d : {&mw_static, &er_static}) {
            cmp.addRow({d->policy, units::formatBytes(d->memory),
                        TablePrinter::num(static_cast<std::int64_t>(
                            d->totalReplicas)),
                        TablePrinter::num(static_cast<std::int64_t>(
                            d->nodes))});
        }
        cmp.print(std::cout);
        std::cout << "memory reduction: "
                  << TablePrinter::ratio(
                         static_cast<double>(mw_static.memory) /
                         static_cast<double>(er_static.memory))
                  << ", node reduction: "
                  << TablePrinter::ratio(
                         static_cast<double>(mw_static.nodes) /
                         static_cast<double>(er_static.nodes))
                  << "\n\n";
    }
    return 0;
}
