/**
 * @file
 * Quickstart: the complete ElasticRec flow on a laptop-sized model.
 *
 *   1. Build a small DLRM and a monolithic (model-wise) server.
 *   2. Serve queries while recording per-row access frequencies (the
 *      paper's production history mechanism).
 *   3. Preprocess: sort each table by hotness, build the access CDF.
 *   4. Run the DP partitioner (Algorithm 2) over the utility-based
 *      cost model (Algorithm 1) to pick shard boundaries.
 *   5. Wire the microservice stack (dense shard + sparse shards with
 *      bucketized routing) and verify it returns the same predictions
 *      as the monolithic server.
 *   6. Compare the two architectures' deployment memory at a target
 *      throughput.
 */

#include <iostream>
#include <string>

#include "elasticrec/common/table_printer.h"
#include "elasticrec/core/planner.h"
#include "elasticrec/embedding/frequency_tracker.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/obs/export.h"
#include "elasticrec/serving/monolithic_server.h"
#include "elasticrec/serving/stack_builder.h"

using namespace erec;

int
main(int argc, char **argv)
{
    // Optional: `--metrics-out DIR` dumps the serving stack's metrics
    // as a Prometheus text file under DIR.
    std::string metrics_dir;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--metrics-out")
            metrics_dir = argv[i + 1];

    // ------------------------------------------------------------------
    // 1. A small DLRM: 4 tables x 10k rows, dim 32, batch 8.
    // ------------------------------------------------------------------
    model::DlrmConfig config = model::rm1();
    config.name = "quickstart";
    config.numTables = 4;
    config.rowsPerTable = 10'000;
    config.poolingFactor = 256;
    config.batchSize = 8;

    auto dlrm = std::make_shared<model::Dlrm>(config);
    serving::MonolithicServer monolithic(dlrm);
    std::cout << "model: " << config.numTables << " tables x "
              << config.rowsPerTable << " rows, dense params "
              << units::formatBytes(config.denseParamBytes())
              << ", embeddings "
              << units::formatBytes(config.embeddingBytes()) << "\n";

    // ------------------------------------------------------------------
    // 2. Serve traffic on the monolith and record access history.
    // ------------------------------------------------------------------
    workload::QueryShape shape;
    shape.batchSize = config.batchSize;
    shape.numTables = config.numTables;
    shape.gathersPerItem = config.poolingFactor;
    workload::QueryGenerator gen(
        shape,
        std::make_shared<workload::LocalityDistribution>(
            config.rowsPerTable, /*p=*/0.9),
        /*seed=*/2024);

    embedding::FrequencyTracker tracker(config.rowsPerTable);
    for (int i = 0; i < 200; ++i) {
        const auto q = gen.next();
        monolithic.serve(q);
        for (const auto &lookup : q.lookups)
            tracker.recordAll(lookup.indices);
    }
    std::cout << "recorded " << tracker.totalAccesses()
              << " accesses; top 10% of rows cover "
              << TablePrinter::percent(tracker.topRowsCoverage(
                     config.rowsPerTable / 10))
              << " of them\n";

    // ------------------------------------------------------------------
    // 3. Preprocess: hotness sort + access CDF (Figure 8(b)).
    // ------------------------------------------------------------------
    const auto perm = tracker.sortPermutation();
    auto cdf = std::make_shared<embedding::AccessCdf>(
        tracker.buildCdf(/*granules=*/256));

    // ------------------------------------------------------------------
    // 4. Partition with the DP algorithm over the measured CDF.
    // ------------------------------------------------------------------
    // Toy-scale containers: the default 256 MiB minimum allocation
    // would dwarf a 1 MiB table, so scale it down accordingly.
    core::PlannerOptions options;
    options.minMemAlloc = units::kMiB;
    core::Planner planner(config, hw::cpuOnlyNode(), options);
    const auto partition = planner.partitionTable(*cdf);
    std::cout << "DP chose " << partition.numShards()
              << " shards; boundaries:";
    for (auto b : partition.boundaries)
        std::cout << " " << b;
    std::cout << "\n";

    // ------------------------------------------------------------------
    // 5. Wire the microservice stack and check equivalence.
    // ------------------------------------------------------------------
    auto registry = std::make_shared<obs::Registry>();
    auto stack = serving::buildElasticRecStack(
        dlrm,
        {serving::TablePlan{.boundaries = partition.boundaries,
                            .sortPerm = perm}},
        {.observability = registry});
    const auto q = gen.next();
    const auto mono_out = monolithic.serve(q);
    const auto shard_out = stack.frontend->serve(q);
    double max_err = 0;
    for (std::size_t i = 0; i < mono_out.size(); ++i)
        max_err = std::max(max_err, std::abs(static_cast<double>(
                                        mono_out[i] - shard_out[i])));
    std::cout << "microservice vs monolithic predictions: max |diff| = "
              << max_err << (max_err < 1e-4 ? " (equivalent)" : "")
              << "\n";

    // ------------------------------------------------------------------
    // 6. Deployment cost at a 100 QPS fleet target. At toy scale the
    //    tables are so small that replicating them costs nothing, so
    //    also plan the paper-scale RM1 (20M-row tables; planning works
    //    on the analytic CDF, no giant allocations) to see the real
    //    effect.
    // ------------------------------------------------------------------
    const auto er_plan = planner.planElasticRec({cdf});
    const auto mw_plan = planner.planModelWise();
    std::cout << "toy-scale memory @100 QPS: model-wise "
              << units::formatBytes(mw_plan.memoryForTarget(100.0))
              << " vs ElasticRec "
              << units::formatBytes(er_plan.memoryForTarget(100.0))
              << " (tables too small for replication to matter)\n";

    const auto rm1 = model::rm1();
    core::Planner paper_planner(rm1, hw::cpuOnlyNode());
    auto rm1_dist = std::make_shared<workload::LocalityDistribution>(
        rm1.rowsPerTable, rm1.localityP);
    auto rm1_cdf = std::make_shared<embedding::AccessCdf>(
        embedding::AccessCdf::fromMassFunction(
            rm1.rowsPerTable, [&](std::uint64_t x) {
                return rm1_dist->massOfTopRows(x);
            }));
    const auto rm1_er = paper_planner.planElasticRec({rm1_cdf});
    const auto rm1_mw = paper_planner.planModelWise();
    const auto er_mem = rm1_er.memoryForTarget(100.0);
    const auto mw_mem = rm1_mw.memoryForTarget(100.0);
    std::cout << "paper-scale RM1 memory @100 QPS: model-wise "
              << units::formatBytes(mw_mem) << " vs ElasticRec "
              << units::formatBytes(er_mem) << " ("
              << TablePrinter::ratio(static_cast<double>(mw_mem) /
                                     static_cast<double>(er_mem))
              << " reduction)\n";

    if (!metrics_dir.empty()) {
        stack.publishStats();
        obs::writeMetricsFiles(metrics_dir, "quickstart", *registry);
        std::cout << "telemetry: " << metrics_dir
                  << "/quickstart.prom\n";
    }
    return 0;
}
