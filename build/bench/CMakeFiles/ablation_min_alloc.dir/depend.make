# Empty dependencies file for ablation_min_alloc.
# This may be replaced when dependencies are built.
