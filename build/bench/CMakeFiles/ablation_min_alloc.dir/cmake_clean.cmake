file(REMOVE_RECURSE
  "CMakeFiles/ablation_min_alloc.dir/ablation_min_alloc.cpp.o"
  "CMakeFiles/ablation_min_alloc.dir/ablation_min_alloc.cpp.o.d"
  "ablation_min_alloc"
  "ablation_min_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_min_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
