# Empty dependencies file for fig03_layer_breakdown.
# This may be replaced when dependencies are built.
