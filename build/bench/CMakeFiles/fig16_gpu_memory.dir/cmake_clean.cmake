file(REMOVE_RECURSE
  "CMakeFiles/fig16_gpu_memory.dir/fig16_gpu_memory.cpp.o"
  "CMakeFiles/fig16_gpu_memory.dir/fig16_gpu_memory.cpp.o.d"
  "fig16_gpu_memory"
  "fig16_gpu_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_gpu_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
