# Empty dependencies file for fig16_gpu_memory.
# This may be replaced when dependencies are built.
