file(REMOVE_RECURSE
  "CMakeFiles/ablation_bursty_traffic.dir/ablation_bursty_traffic.cpp.o"
  "CMakeFiles/ablation_bursty_traffic.dir/ablation_bursty_traffic.cpp.o.d"
  "ablation_bursty_traffic"
  "ablation_bursty_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bursty_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
