file(REMOVE_RECURSE
  "CMakeFiles/ablation_sorting.dir/ablation_sorting.cpp.o"
  "CMakeFiles/ablation_sorting.dir/ablation_sorting.cpp.o.d"
  "ablation_sorting"
  "ablation_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
