file(REMOVE_RECURSE
  "CMakeFiles/fig12_microbenchmarks.dir/fig12_microbenchmarks.cpp.o"
  "CMakeFiles/fig12_microbenchmarks.dir/fig12_microbenchmarks.cpp.o.d"
  "fig12_microbenchmarks"
  "fig12_microbenchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_microbenchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
