# Empty dependencies file for fig12_microbenchmarks.
# This may be replaced when dependencies are built.
