
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_load_balancer.cpp" "bench/CMakeFiles/ablation_load_balancer.dir/ablation_load_balancer.cpp.o" "gcc" "bench/CMakeFiles/ablation_load_balancer.dir/ablation_load_balancer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elasticrec/sim/CMakeFiles/elasticrec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/serving/CMakeFiles/elasticrec_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/cluster/CMakeFiles/elasticrec_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/core/CMakeFiles/elasticrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/model/CMakeFiles/elasticrec_model.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/embedding/CMakeFiles/elasticrec_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/workload/CMakeFiles/elasticrec_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/rpc/CMakeFiles/elasticrec_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/hw/CMakeFiles/elasticrec_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/common/CMakeFiles/elasticrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
