# Empty dependencies file for fig05_layer_qps.
# This may be replaced when dependencies are built.
