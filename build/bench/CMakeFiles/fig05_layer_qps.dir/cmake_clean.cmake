file(REMOVE_RECURSE
  "CMakeFiles/fig05_layer_qps.dir/fig05_layer_qps.cpp.o"
  "CMakeFiles/fig05_layer_qps.dir/fig05_layer_qps.cpp.o.d"
  "fig05_layer_qps"
  "fig05_layer_qps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_layer_qps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
