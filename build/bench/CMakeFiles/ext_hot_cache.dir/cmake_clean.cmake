file(REMOVE_RECURSE
  "CMakeFiles/ext_hot_cache.dir/ext_hot_cache.cpp.o"
  "CMakeFiles/ext_hot_cache.dir/ext_hot_cache.cpp.o.d"
  "ext_hot_cache"
  "ext_hot_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hot_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
