# Empty compiler generated dependencies file for ext_hot_cache.
# This may be replaced when dependencies are built.
