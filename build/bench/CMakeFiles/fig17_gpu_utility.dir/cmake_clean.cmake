file(REMOVE_RECURSE
  "CMakeFiles/fig17_gpu_utility.dir/fig17_gpu_utility.cpp.o"
  "CMakeFiles/fig17_gpu_utility.dir/fig17_gpu_utility.cpp.o.d"
  "fig17_gpu_utility"
  "fig17_gpu_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_gpu_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
