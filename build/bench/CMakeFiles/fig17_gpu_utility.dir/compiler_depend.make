# Empty compiler generated dependencies file for fig17_gpu_utility.
# This may be replaced when dependencies are built.
