file(REMOVE_RECURSE
  "CMakeFiles/fig19_dynamic_traffic.dir/fig19_dynamic_traffic.cpp.o"
  "CMakeFiles/fig19_dynamic_traffic.dir/fig19_dynamic_traffic.cpp.o.d"
  "fig19_dynamic_traffic"
  "fig19_dynamic_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_dynamic_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
