# Empty dependencies file for fig14_cpu_utility.
# This may be replaced when dependencies are built.
