file(REMOVE_RECURSE
  "CMakeFiles/fig14_cpu_utility.dir/fig14_cpu_utility.cpp.o"
  "CMakeFiles/fig14_cpu_utility.dir/fig14_cpu_utility.cpp.o.d"
  "fig14_cpu_utility"
  "fig14_cpu_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cpu_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
