# Empty dependencies file for fig18_gpu_nodes.
# This may be replaced when dependencies are built.
