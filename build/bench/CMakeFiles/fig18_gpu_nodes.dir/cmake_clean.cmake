file(REMOVE_RECURSE
  "CMakeFiles/fig18_gpu_nodes.dir/fig18_gpu_nodes.cpp.o"
  "CMakeFiles/fig18_gpu_nodes.dir/fig18_gpu_nodes.cpp.o.d"
  "fig18_gpu_nodes"
  "fig18_gpu_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_gpu_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
