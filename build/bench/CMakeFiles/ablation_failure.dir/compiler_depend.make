# Empty compiler generated dependencies file for ablation_failure.
# This may be replaced when dependencies are built.
