file(REMOVE_RECURSE
  "CMakeFiles/ablation_failure.dir/ablation_failure.cpp.o"
  "CMakeFiles/ablation_failure.dir/ablation_failure.cpp.o.d"
  "ablation_failure"
  "ablation_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
