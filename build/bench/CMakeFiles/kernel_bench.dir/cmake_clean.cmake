file(REMOVE_RECURSE
  "CMakeFiles/kernel_bench.dir/kernel_bench.cpp.o"
  "CMakeFiles/kernel_bench.dir/kernel_bench.cpp.o.d"
  "kernel_bench"
  "kernel_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
