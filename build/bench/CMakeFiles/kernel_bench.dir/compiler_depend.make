# Empty compiler generated dependencies file for kernel_bench.
# This may be replaced when dependencies are built.
