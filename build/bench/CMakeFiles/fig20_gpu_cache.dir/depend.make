# Empty dependencies file for fig20_gpu_cache.
# This may be replaced when dependencies are built.
