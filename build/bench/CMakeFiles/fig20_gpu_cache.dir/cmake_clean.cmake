file(REMOVE_RECURSE
  "CMakeFiles/fig20_gpu_cache.dir/fig20_gpu_cache.cpp.o"
  "CMakeFiles/fig20_gpu_cache.dir/fig20_gpu_cache.cpp.o.d"
  "fig20_gpu_cache"
  "fig20_gpu_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_gpu_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
