file(REMOVE_RECURSE
  "CMakeFiles/fig09_gather_profile.dir/fig09_gather_profile.cpp.o"
  "CMakeFiles/fig09_gather_profile.dir/fig09_gather_profile.cpp.o.d"
  "fig09_gather_profile"
  "fig09_gather_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_gather_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
