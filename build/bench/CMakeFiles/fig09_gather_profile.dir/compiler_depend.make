# Empty compiler generated dependencies file for fig09_gather_profile.
# This may be replaced when dependencies are built.
