# Empty compiler generated dependencies file for fig06_access_skew.
# This may be replaced when dependencies are built.
