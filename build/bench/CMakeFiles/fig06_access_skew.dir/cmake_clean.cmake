file(REMOVE_RECURSE
  "CMakeFiles/fig06_access_skew.dir/fig06_access_skew.cpp.o"
  "CMakeFiles/fig06_access_skew.dir/fig06_access_skew.cpp.o.d"
  "fig06_access_skew"
  "fig06_access_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_access_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
