# Empty dependencies file for fig15_cpu_nodes.
# This may be replaced when dependencies are built.
