file(REMOVE_RECURSE
  "CMakeFiles/fig15_cpu_nodes.dir/fig15_cpu_nodes.cpp.o"
  "CMakeFiles/fig15_cpu_nodes.dir/fig15_cpu_nodes.cpp.o.d"
  "fig15_cpu_nodes"
  "fig15_cpu_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cpu_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
