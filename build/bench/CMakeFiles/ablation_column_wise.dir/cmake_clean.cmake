file(REMOVE_RECURSE
  "CMakeFiles/ablation_column_wise.dir/ablation_column_wise.cpp.o"
  "CMakeFiles/ablation_column_wise.dir/ablation_column_wise.cpp.o.d"
  "ablation_column_wise"
  "ablation_column_wise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_column_wise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
