# Empty dependencies file for ablation_column_wise.
# This may be replaced when dependencies are built.
