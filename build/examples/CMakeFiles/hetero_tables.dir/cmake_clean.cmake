file(REMOVE_RECURSE
  "CMakeFiles/hetero_tables.dir/hetero_tables.cpp.o"
  "CMakeFiles/hetero_tables.dir/hetero_tables.cpp.o.d"
  "hetero_tables"
  "hetero_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
