# Empty dependencies file for hetero_tables.
# This may be replaced when dependencies are built.
