# Empty compiler generated dependencies file for qps_model_test.
# This may be replaced when dependencies are built.
