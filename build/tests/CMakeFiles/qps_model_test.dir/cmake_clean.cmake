file(REMOVE_RECURSE
  "CMakeFiles/qps_model_test.dir/qps_model_test.cpp.o"
  "CMakeFiles/qps_model_test.dir/qps_model_test.cpp.o.d"
  "qps_model_test"
  "qps_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qps_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
