file(REMOVE_RECURSE
  "CMakeFiles/hpa_test.dir/hpa_test.cpp.o"
  "CMakeFiles/hpa_test.dir/hpa_test.cpp.o.d"
  "hpa_test"
  "hpa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
