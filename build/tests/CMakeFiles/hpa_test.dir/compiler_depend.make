# Empty compiler generated dependencies file for hpa_test.
# This may be replaced when dependencies are built.
