file(REMOVE_RECURSE
  "CMakeFiles/dlrm_config_test.dir/dlrm_config_test.cpp.o"
  "CMakeFiles/dlrm_config_test.dir/dlrm_config_test.cpp.o.d"
  "dlrm_config_test"
  "dlrm_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrm_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
