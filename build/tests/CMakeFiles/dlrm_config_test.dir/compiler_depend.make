# Empty compiler generated dependencies file for dlrm_config_test.
# This may be replaced when dependencies are built.
