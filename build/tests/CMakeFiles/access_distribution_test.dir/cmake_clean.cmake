file(REMOVE_RECURSE
  "CMakeFiles/access_distribution_test.dir/access_distribution_test.cpp.o"
  "CMakeFiles/access_distribution_test.dir/access_distribution_test.cpp.o.d"
  "access_distribution_test"
  "access_distribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
