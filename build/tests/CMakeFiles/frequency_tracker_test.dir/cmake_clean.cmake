file(REMOVE_RECURSE
  "CMakeFiles/frequency_tracker_test.dir/frequency_tracker_test.cpp.o"
  "CMakeFiles/frequency_tracker_test.dir/frequency_tracker_test.cpp.o.d"
  "frequency_tracker_test"
  "frequency_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
