# Empty dependencies file for frequency_tracker_test.
# This may be replaced when dependencies are built.
