# Empty dependencies file for embedding_table_test.
# This may be replaced when dependencies are built.
