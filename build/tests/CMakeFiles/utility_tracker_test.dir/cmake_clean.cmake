file(REMOVE_RECURSE
  "CMakeFiles/utility_tracker_test.dir/utility_tracker_test.cpp.o"
  "CMakeFiles/utility_tracker_test.dir/utility_tracker_test.cpp.o.d"
  "utility_tracker_test"
  "utility_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utility_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
