# Empty dependencies file for utility_tracker_test.
# This may be replaced when dependencies are built.
