# Empty dependencies file for bucketizer_test.
# This may be replaced when dependencies are built.
