file(REMOVE_RECURSE
  "CMakeFiles/bucketizer_test.dir/bucketizer_test.cpp.o"
  "CMakeFiles/bucketizer_test.dir/bucketizer_test.cpp.o.d"
  "bucketizer_test"
  "bucketizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucketizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
