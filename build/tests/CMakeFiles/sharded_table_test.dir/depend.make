# Empty dependencies file for sharded_table_test.
# This may be replaced when dependencies are built.
