file(REMOVE_RECURSE
  "CMakeFiles/sharded_table_test.dir/sharded_table_test.cpp.o"
  "CMakeFiles/sharded_table_test.dir/sharded_table_test.cpp.o.d"
  "sharded_table_test"
  "sharded_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
