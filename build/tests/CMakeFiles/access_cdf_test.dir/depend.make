# Empty dependencies file for access_cdf_test.
# This may be replaced when dependencies are built.
