file(REMOVE_RECURSE
  "CMakeFiles/access_cdf_test.dir/access_cdf_test.cpp.o"
  "CMakeFiles/access_cdf_test.dir/access_cdf_test.cpp.o.d"
  "access_cdf_test"
  "access_cdf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_cdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
