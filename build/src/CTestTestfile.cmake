# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("elasticrec/common")
subdirs("elasticrec/workload")
subdirs("elasticrec/embedding")
subdirs("elasticrec/model")
subdirs("elasticrec/hw")
subdirs("elasticrec/rpc")
subdirs("elasticrec/core")
subdirs("elasticrec/serving")
subdirs("elasticrec/cluster")
subdirs("elasticrec/sim")
