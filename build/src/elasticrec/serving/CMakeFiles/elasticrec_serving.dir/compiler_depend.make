# Empty compiler generated dependencies file for elasticrec_serving.
# This may be replaced when dependencies are built.
