file(REMOVE_RECURSE
  "CMakeFiles/elasticrec_serving.dir/dense_shard_server.cc.o"
  "CMakeFiles/elasticrec_serving.dir/dense_shard_server.cc.o.d"
  "CMakeFiles/elasticrec_serving.dir/monolithic_server.cc.o"
  "CMakeFiles/elasticrec_serving.dir/monolithic_server.cc.o.d"
  "CMakeFiles/elasticrec_serving.dir/sparse_shard_server.cc.o"
  "CMakeFiles/elasticrec_serving.dir/sparse_shard_server.cc.o.d"
  "CMakeFiles/elasticrec_serving.dir/stack_builder.cc.o"
  "CMakeFiles/elasticrec_serving.dir/stack_builder.cc.o.d"
  "libelasticrec_serving.a"
  "libelasticrec_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticrec_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
