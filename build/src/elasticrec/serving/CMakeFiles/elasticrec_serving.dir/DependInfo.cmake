
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elasticrec/serving/dense_shard_server.cc" "src/elasticrec/serving/CMakeFiles/elasticrec_serving.dir/dense_shard_server.cc.o" "gcc" "src/elasticrec/serving/CMakeFiles/elasticrec_serving.dir/dense_shard_server.cc.o.d"
  "/root/repo/src/elasticrec/serving/monolithic_server.cc" "src/elasticrec/serving/CMakeFiles/elasticrec_serving.dir/monolithic_server.cc.o" "gcc" "src/elasticrec/serving/CMakeFiles/elasticrec_serving.dir/monolithic_server.cc.o.d"
  "/root/repo/src/elasticrec/serving/sparse_shard_server.cc" "src/elasticrec/serving/CMakeFiles/elasticrec_serving.dir/sparse_shard_server.cc.o" "gcc" "src/elasticrec/serving/CMakeFiles/elasticrec_serving.dir/sparse_shard_server.cc.o.d"
  "/root/repo/src/elasticrec/serving/stack_builder.cc" "src/elasticrec/serving/CMakeFiles/elasticrec_serving.dir/stack_builder.cc.o" "gcc" "src/elasticrec/serving/CMakeFiles/elasticrec_serving.dir/stack_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elasticrec/common/CMakeFiles/elasticrec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/core/CMakeFiles/elasticrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/embedding/CMakeFiles/elasticrec_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/model/CMakeFiles/elasticrec_model.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/rpc/CMakeFiles/elasticrec_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/workload/CMakeFiles/elasticrec_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/hw/CMakeFiles/elasticrec_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
