file(REMOVE_RECURSE
  "libelasticrec_serving.a"
)
