# Empty dependencies file for elasticrec_cluster.
# This may be replaced when dependencies are built.
