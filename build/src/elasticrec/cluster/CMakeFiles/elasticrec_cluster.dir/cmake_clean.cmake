file(REMOVE_RECURSE
  "CMakeFiles/elasticrec_cluster.dir/deployment.cc.o"
  "CMakeFiles/elasticrec_cluster.dir/deployment.cc.o.d"
  "CMakeFiles/elasticrec_cluster.dir/hpa.cc.o"
  "CMakeFiles/elasticrec_cluster.dir/hpa.cc.o.d"
  "CMakeFiles/elasticrec_cluster.dir/load_balancer.cc.o"
  "CMakeFiles/elasticrec_cluster.dir/load_balancer.cc.o.d"
  "CMakeFiles/elasticrec_cluster.dir/metrics.cc.o"
  "CMakeFiles/elasticrec_cluster.dir/metrics.cc.o.d"
  "CMakeFiles/elasticrec_cluster.dir/scheduler.cc.o"
  "CMakeFiles/elasticrec_cluster.dir/scheduler.cc.o.d"
  "libelasticrec_cluster.a"
  "libelasticrec_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticrec_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
