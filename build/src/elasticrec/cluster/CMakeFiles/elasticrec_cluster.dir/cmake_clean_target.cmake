file(REMOVE_RECURSE
  "libelasticrec_cluster.a"
)
