file(REMOVE_RECURSE
  "libelasticrec_model.a"
)
