
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elasticrec/model/dlrm.cc" "src/elasticrec/model/CMakeFiles/elasticrec_model.dir/dlrm.cc.o" "gcc" "src/elasticrec/model/CMakeFiles/elasticrec_model.dir/dlrm.cc.o.d"
  "/root/repo/src/elasticrec/model/dlrm_config.cc" "src/elasticrec/model/CMakeFiles/elasticrec_model.dir/dlrm_config.cc.o" "gcc" "src/elasticrec/model/CMakeFiles/elasticrec_model.dir/dlrm_config.cc.o.d"
  "/root/repo/src/elasticrec/model/mlp.cc" "src/elasticrec/model/CMakeFiles/elasticrec_model.dir/mlp.cc.o" "gcc" "src/elasticrec/model/CMakeFiles/elasticrec_model.dir/mlp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elasticrec/common/CMakeFiles/elasticrec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/embedding/CMakeFiles/elasticrec_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/workload/CMakeFiles/elasticrec_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
