file(REMOVE_RECURSE
  "CMakeFiles/elasticrec_model.dir/dlrm.cc.o"
  "CMakeFiles/elasticrec_model.dir/dlrm.cc.o.d"
  "CMakeFiles/elasticrec_model.dir/dlrm_config.cc.o"
  "CMakeFiles/elasticrec_model.dir/dlrm_config.cc.o.d"
  "CMakeFiles/elasticrec_model.dir/mlp.cc.o"
  "CMakeFiles/elasticrec_model.dir/mlp.cc.o.d"
  "libelasticrec_model.a"
  "libelasticrec_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticrec_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
