# Empty compiler generated dependencies file for elasticrec_model.
# This may be replaced when dependencies are built.
