
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elasticrec/workload/access_distribution.cc" "src/elasticrec/workload/CMakeFiles/elasticrec_workload.dir/access_distribution.cc.o" "gcc" "src/elasticrec/workload/CMakeFiles/elasticrec_workload.dir/access_distribution.cc.o.d"
  "/root/repo/src/elasticrec/workload/datasets.cc" "src/elasticrec/workload/CMakeFiles/elasticrec_workload.dir/datasets.cc.o" "gcc" "src/elasticrec/workload/CMakeFiles/elasticrec_workload.dir/datasets.cc.o.d"
  "/root/repo/src/elasticrec/workload/query_generator.cc" "src/elasticrec/workload/CMakeFiles/elasticrec_workload.dir/query_generator.cc.o" "gcc" "src/elasticrec/workload/CMakeFiles/elasticrec_workload.dir/query_generator.cc.o.d"
  "/root/repo/src/elasticrec/workload/traffic.cc" "src/elasticrec/workload/CMakeFiles/elasticrec_workload.dir/traffic.cc.o" "gcc" "src/elasticrec/workload/CMakeFiles/elasticrec_workload.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elasticrec/common/CMakeFiles/elasticrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
