file(REMOVE_RECURSE
  "libelasticrec_workload.a"
)
