file(REMOVE_RECURSE
  "CMakeFiles/elasticrec_workload.dir/access_distribution.cc.o"
  "CMakeFiles/elasticrec_workload.dir/access_distribution.cc.o.d"
  "CMakeFiles/elasticrec_workload.dir/datasets.cc.o"
  "CMakeFiles/elasticrec_workload.dir/datasets.cc.o.d"
  "CMakeFiles/elasticrec_workload.dir/query_generator.cc.o"
  "CMakeFiles/elasticrec_workload.dir/query_generator.cc.o.d"
  "CMakeFiles/elasticrec_workload.dir/traffic.cc.o"
  "CMakeFiles/elasticrec_workload.dir/traffic.cc.o.d"
  "libelasticrec_workload.a"
  "libelasticrec_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticrec_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
