# Empty dependencies file for elasticrec_workload.
# This may be replaced when dependencies are built.
