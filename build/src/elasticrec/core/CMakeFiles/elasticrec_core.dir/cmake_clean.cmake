file(REMOVE_RECURSE
  "CMakeFiles/elasticrec_core.dir/bucketizer.cc.o"
  "CMakeFiles/elasticrec_core.dir/bucketizer.cc.o.d"
  "CMakeFiles/elasticrec_core.dir/cost_model.cc.o"
  "CMakeFiles/elasticrec_core.dir/cost_model.cc.o.d"
  "CMakeFiles/elasticrec_core.dir/dp_partitioner.cc.o"
  "CMakeFiles/elasticrec_core.dir/dp_partitioner.cc.o.d"
  "CMakeFiles/elasticrec_core.dir/planner.cc.o"
  "CMakeFiles/elasticrec_core.dir/planner.cc.o.d"
  "CMakeFiles/elasticrec_core.dir/qps_model.cc.o"
  "CMakeFiles/elasticrec_core.dir/qps_model.cc.o.d"
  "CMakeFiles/elasticrec_core.dir/utility_tracker.cc.o"
  "CMakeFiles/elasticrec_core.dir/utility_tracker.cc.o.d"
  "libelasticrec_core.a"
  "libelasticrec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticrec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
