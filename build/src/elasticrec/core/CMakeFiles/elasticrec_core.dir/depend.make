# Empty dependencies file for elasticrec_core.
# This may be replaced when dependencies are built.
