file(REMOVE_RECURSE
  "libelasticrec_core.a"
)
