
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elasticrec/core/bucketizer.cc" "src/elasticrec/core/CMakeFiles/elasticrec_core.dir/bucketizer.cc.o" "gcc" "src/elasticrec/core/CMakeFiles/elasticrec_core.dir/bucketizer.cc.o.d"
  "/root/repo/src/elasticrec/core/cost_model.cc" "src/elasticrec/core/CMakeFiles/elasticrec_core.dir/cost_model.cc.o" "gcc" "src/elasticrec/core/CMakeFiles/elasticrec_core.dir/cost_model.cc.o.d"
  "/root/repo/src/elasticrec/core/dp_partitioner.cc" "src/elasticrec/core/CMakeFiles/elasticrec_core.dir/dp_partitioner.cc.o" "gcc" "src/elasticrec/core/CMakeFiles/elasticrec_core.dir/dp_partitioner.cc.o.d"
  "/root/repo/src/elasticrec/core/planner.cc" "src/elasticrec/core/CMakeFiles/elasticrec_core.dir/planner.cc.o" "gcc" "src/elasticrec/core/CMakeFiles/elasticrec_core.dir/planner.cc.o.d"
  "/root/repo/src/elasticrec/core/qps_model.cc" "src/elasticrec/core/CMakeFiles/elasticrec_core.dir/qps_model.cc.o" "gcc" "src/elasticrec/core/CMakeFiles/elasticrec_core.dir/qps_model.cc.o.d"
  "/root/repo/src/elasticrec/core/utility_tracker.cc" "src/elasticrec/core/CMakeFiles/elasticrec_core.dir/utility_tracker.cc.o" "gcc" "src/elasticrec/core/CMakeFiles/elasticrec_core.dir/utility_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elasticrec/common/CMakeFiles/elasticrec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/embedding/CMakeFiles/elasticrec_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/hw/CMakeFiles/elasticrec_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/model/CMakeFiles/elasticrec_model.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/rpc/CMakeFiles/elasticrec_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/workload/CMakeFiles/elasticrec_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
