# Empty compiler generated dependencies file for elasticrec_embedding.
# This may be replaced when dependencies are built.
