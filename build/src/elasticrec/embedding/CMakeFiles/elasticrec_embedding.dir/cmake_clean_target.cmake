file(REMOVE_RECURSE
  "libelasticrec_embedding.a"
)
