
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elasticrec/embedding/access_cdf.cc" "src/elasticrec/embedding/CMakeFiles/elasticrec_embedding.dir/access_cdf.cc.o" "gcc" "src/elasticrec/embedding/CMakeFiles/elasticrec_embedding.dir/access_cdf.cc.o.d"
  "/root/repo/src/elasticrec/embedding/embedding_table.cc" "src/elasticrec/embedding/CMakeFiles/elasticrec_embedding.dir/embedding_table.cc.o" "gcc" "src/elasticrec/embedding/CMakeFiles/elasticrec_embedding.dir/embedding_table.cc.o.d"
  "/root/repo/src/elasticrec/embedding/frequency_tracker.cc" "src/elasticrec/embedding/CMakeFiles/elasticrec_embedding.dir/frequency_tracker.cc.o" "gcc" "src/elasticrec/embedding/CMakeFiles/elasticrec_embedding.dir/frequency_tracker.cc.o.d"
  "/root/repo/src/elasticrec/embedding/sharded_table.cc" "src/elasticrec/embedding/CMakeFiles/elasticrec_embedding.dir/sharded_table.cc.o" "gcc" "src/elasticrec/embedding/CMakeFiles/elasticrec_embedding.dir/sharded_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elasticrec/common/CMakeFiles/elasticrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
