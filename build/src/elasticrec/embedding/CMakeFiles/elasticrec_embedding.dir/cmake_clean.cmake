file(REMOVE_RECURSE
  "CMakeFiles/elasticrec_embedding.dir/access_cdf.cc.o"
  "CMakeFiles/elasticrec_embedding.dir/access_cdf.cc.o.d"
  "CMakeFiles/elasticrec_embedding.dir/embedding_table.cc.o"
  "CMakeFiles/elasticrec_embedding.dir/embedding_table.cc.o.d"
  "CMakeFiles/elasticrec_embedding.dir/frequency_tracker.cc.o"
  "CMakeFiles/elasticrec_embedding.dir/frequency_tracker.cc.o.d"
  "CMakeFiles/elasticrec_embedding.dir/sharded_table.cc.o"
  "CMakeFiles/elasticrec_embedding.dir/sharded_table.cc.o.d"
  "libelasticrec_embedding.a"
  "libelasticrec_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticrec_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
