file(REMOVE_RECURSE
  "CMakeFiles/elasticrec_rpc.dir/channel.cc.o"
  "CMakeFiles/elasticrec_rpc.dir/channel.cc.o.d"
  "CMakeFiles/elasticrec_rpc.dir/message.cc.o"
  "CMakeFiles/elasticrec_rpc.dir/message.cc.o.d"
  "libelasticrec_rpc.a"
  "libelasticrec_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticrec_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
