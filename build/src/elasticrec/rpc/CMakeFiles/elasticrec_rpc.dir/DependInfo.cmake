
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elasticrec/rpc/channel.cc" "src/elasticrec/rpc/CMakeFiles/elasticrec_rpc.dir/channel.cc.o" "gcc" "src/elasticrec/rpc/CMakeFiles/elasticrec_rpc.dir/channel.cc.o.d"
  "/root/repo/src/elasticrec/rpc/message.cc" "src/elasticrec/rpc/CMakeFiles/elasticrec_rpc.dir/message.cc.o" "gcc" "src/elasticrec/rpc/CMakeFiles/elasticrec_rpc.dir/message.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elasticrec/common/CMakeFiles/elasticrec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/hw/CMakeFiles/elasticrec_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
