file(REMOVE_RECURSE
  "libelasticrec_rpc.a"
)
