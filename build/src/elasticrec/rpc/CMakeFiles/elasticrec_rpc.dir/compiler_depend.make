# Empty compiler generated dependencies file for elasticrec_rpc.
# This may be replaced when dependencies are built.
