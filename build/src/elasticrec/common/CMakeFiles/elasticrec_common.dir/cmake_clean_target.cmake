file(REMOVE_RECURSE
  "libelasticrec_common.a"
)
