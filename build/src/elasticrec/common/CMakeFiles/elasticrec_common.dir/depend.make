# Empty dependencies file for elasticrec_common.
# This may be replaced when dependencies are built.
