file(REMOVE_RECURSE
  "CMakeFiles/elasticrec_common.dir/logging.cc.o"
  "CMakeFiles/elasticrec_common.dir/logging.cc.o.d"
  "CMakeFiles/elasticrec_common.dir/rng.cc.o"
  "CMakeFiles/elasticrec_common.dir/rng.cc.o.d"
  "CMakeFiles/elasticrec_common.dir/stats.cc.o"
  "CMakeFiles/elasticrec_common.dir/stats.cc.o.d"
  "CMakeFiles/elasticrec_common.dir/table_printer.cc.o"
  "CMakeFiles/elasticrec_common.dir/table_printer.cc.o.d"
  "CMakeFiles/elasticrec_common.dir/units.cc.o"
  "CMakeFiles/elasticrec_common.dir/units.cc.o.d"
  "libelasticrec_common.a"
  "libelasticrec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticrec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
