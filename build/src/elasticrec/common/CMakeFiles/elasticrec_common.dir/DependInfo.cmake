
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elasticrec/common/logging.cc" "src/elasticrec/common/CMakeFiles/elasticrec_common.dir/logging.cc.o" "gcc" "src/elasticrec/common/CMakeFiles/elasticrec_common.dir/logging.cc.o.d"
  "/root/repo/src/elasticrec/common/rng.cc" "src/elasticrec/common/CMakeFiles/elasticrec_common.dir/rng.cc.o" "gcc" "src/elasticrec/common/CMakeFiles/elasticrec_common.dir/rng.cc.o.d"
  "/root/repo/src/elasticrec/common/stats.cc" "src/elasticrec/common/CMakeFiles/elasticrec_common.dir/stats.cc.o" "gcc" "src/elasticrec/common/CMakeFiles/elasticrec_common.dir/stats.cc.o.d"
  "/root/repo/src/elasticrec/common/table_printer.cc" "src/elasticrec/common/CMakeFiles/elasticrec_common.dir/table_printer.cc.o" "gcc" "src/elasticrec/common/CMakeFiles/elasticrec_common.dir/table_printer.cc.o.d"
  "/root/repo/src/elasticrec/common/units.cc" "src/elasticrec/common/CMakeFiles/elasticrec_common.dir/units.cc.o" "gcc" "src/elasticrec/common/CMakeFiles/elasticrec_common.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
