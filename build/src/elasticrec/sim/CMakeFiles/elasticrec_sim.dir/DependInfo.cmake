
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elasticrec/sim/cluster_sim.cc" "src/elasticrec/sim/CMakeFiles/elasticrec_sim.dir/cluster_sim.cc.o" "gcc" "src/elasticrec/sim/CMakeFiles/elasticrec_sim.dir/cluster_sim.cc.o.d"
  "/root/repo/src/elasticrec/sim/csv.cc" "src/elasticrec/sim/CMakeFiles/elasticrec_sim.dir/csv.cc.o" "gcc" "src/elasticrec/sim/CMakeFiles/elasticrec_sim.dir/csv.cc.o.d"
  "/root/repo/src/elasticrec/sim/event_queue.cc" "src/elasticrec/sim/CMakeFiles/elasticrec_sim.dir/event_queue.cc.o" "gcc" "src/elasticrec/sim/CMakeFiles/elasticrec_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/elasticrec/sim/experiment.cc" "src/elasticrec/sim/CMakeFiles/elasticrec_sim.dir/experiment.cc.o" "gcc" "src/elasticrec/sim/CMakeFiles/elasticrec_sim.dir/experiment.cc.o.d"
  "/root/repo/src/elasticrec/sim/pod.cc" "src/elasticrec/sim/CMakeFiles/elasticrec_sim.dir/pod.cc.o" "gcc" "src/elasticrec/sim/CMakeFiles/elasticrec_sim.dir/pod.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elasticrec/cluster/CMakeFiles/elasticrec_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/common/CMakeFiles/elasticrec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/core/CMakeFiles/elasticrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/hw/CMakeFiles/elasticrec_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/rpc/CMakeFiles/elasticrec_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/workload/CMakeFiles/elasticrec_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/model/CMakeFiles/elasticrec_model.dir/DependInfo.cmake"
  "/root/repo/build/src/elasticrec/embedding/CMakeFiles/elasticrec_embedding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
