# Empty dependencies file for elasticrec_sim.
# This may be replaced when dependencies are built.
