file(REMOVE_RECURSE
  "CMakeFiles/elasticrec_sim.dir/cluster_sim.cc.o"
  "CMakeFiles/elasticrec_sim.dir/cluster_sim.cc.o.d"
  "CMakeFiles/elasticrec_sim.dir/csv.cc.o"
  "CMakeFiles/elasticrec_sim.dir/csv.cc.o.d"
  "CMakeFiles/elasticrec_sim.dir/event_queue.cc.o"
  "CMakeFiles/elasticrec_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/elasticrec_sim.dir/experiment.cc.o"
  "CMakeFiles/elasticrec_sim.dir/experiment.cc.o.d"
  "CMakeFiles/elasticrec_sim.dir/pod.cc.o"
  "CMakeFiles/elasticrec_sim.dir/pod.cc.o.d"
  "libelasticrec_sim.a"
  "libelasticrec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticrec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
