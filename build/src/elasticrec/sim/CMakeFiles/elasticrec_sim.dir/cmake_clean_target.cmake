file(REMOVE_RECURSE
  "libelasticrec_sim.a"
)
