
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elasticrec/hw/latency_model.cc" "src/elasticrec/hw/CMakeFiles/elasticrec_hw.dir/latency_model.cc.o" "gcc" "src/elasticrec/hw/CMakeFiles/elasticrec_hw.dir/latency_model.cc.o.d"
  "/root/repo/src/elasticrec/hw/network.cc" "src/elasticrec/hw/CMakeFiles/elasticrec_hw.dir/network.cc.o" "gcc" "src/elasticrec/hw/CMakeFiles/elasticrec_hw.dir/network.cc.o.d"
  "/root/repo/src/elasticrec/hw/platform.cc" "src/elasticrec/hw/CMakeFiles/elasticrec_hw.dir/platform.cc.o" "gcc" "src/elasticrec/hw/CMakeFiles/elasticrec_hw.dir/platform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elasticrec/common/CMakeFiles/elasticrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
