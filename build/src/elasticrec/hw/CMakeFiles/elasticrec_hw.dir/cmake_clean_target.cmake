file(REMOVE_RECURSE
  "libelasticrec_hw.a"
)
