file(REMOVE_RECURSE
  "CMakeFiles/elasticrec_hw.dir/latency_model.cc.o"
  "CMakeFiles/elasticrec_hw.dir/latency_model.cc.o.d"
  "CMakeFiles/elasticrec_hw.dir/network.cc.o"
  "CMakeFiles/elasticrec_hw.dir/network.cc.o.d"
  "CMakeFiles/elasticrec_hw.dir/platform.cc.o"
  "CMakeFiles/elasticrec_hw.dir/platform.cc.o.d"
  "libelasticrec_hw.a"
  "libelasticrec_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticrec_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
