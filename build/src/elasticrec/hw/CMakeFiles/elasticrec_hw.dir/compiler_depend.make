# Empty compiler generated dependencies file for elasticrec_hw.
# This may be replaced when dependencies are built.
